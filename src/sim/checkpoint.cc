#include "src/sim/checkpoint.hh"

#include <bit>
#include <cstdio>
#include <cstring>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/util/error.hh"

namespace piso {

namespace {

/** Header size ahead of the payload: magic + version + flags +
 *  config digest + payload length. */
constexpr std::size_t kHeaderBytes = 8 + 4 + 4 + 8 + 8;

/** Trailer: FNV-1a checksum of the payload. */
constexpr std::size_t kTrailerBytes = 8;

void
appendLe(std::string &out, std::uint64_t v, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

std::uint64_t
readLe(const std::string &in, std::size_t at, int bytes)
{
    std::uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
        v |= static_cast<std::uint64_t>(
                 static_cast<unsigned char>(in[at + i]))
             << (8 * i);
    }
    return v;
}

[[noreturn]] void
badImage(const std::string &what)
{
    throw ConfigError("checkpoint image rejected: " + what);
}

} // namespace

std::uint64_t
ckptFnv1a(const std::string &data)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (char c : data) {
        h ^= static_cast<unsigned char>(c);
        h *= 0x100000001b3ull;
    }
    return h;
}

void
CkptWriter::u32(std::uint32_t v)
{
    appendLe(payload_, v, 4);
}

void
CkptWriter::u64(std::uint64_t v)
{
    appendLe(payload_, v, 8);
}

void
CkptWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
CkptWriter::str(const std::string &v)
{
    u32(static_cast<std::uint32_t>(v.size()));
    payload_ += v;
}

std::string
CkptWriter::image(std::uint64_t configDigest) const
{
    std::string out;
    out.reserve(kHeaderBytes + payload_.size() + kTrailerBytes);
    out.append(kCkptMagic, sizeof(kCkptMagic));
    appendLe(out, kCkptVersion, 4);
    appendLe(out, 0, 4); // flags, reserved
    appendLe(out, configDigest, 8);
    appendLe(out, payload_.size(), 8);
    out += payload_;
    appendLe(out, ckptFnv1a(payload_), 8);
    return out;
}

void
CkptWriter::emit(std::ostream &out, std::uint64_t configDigest) const
{
    const std::string img = image(configDigest);
    out.write(img.data(), static_cast<std::streamsize>(img.size()));
}

CkptReader::CkptReader(const std::string &image)
{
    if (image.size() < kHeaderBytes + kTrailerBytes)
        badImage("truncated header (" + std::to_string(image.size()) +
                 " bytes)");
    if (std::memcmp(image.data(), kCkptMagic, sizeof(kCkptMagic)) != 0)
        badImage("bad magic (not a piso checkpoint)");
    const auto version =
        static_cast<std::uint32_t>(readLe(image, 8, 4));
    if (version != kCkptVersion)
        badImage("format version " + std::to_string(version) +
                 " (this build reads version " +
                 std::to_string(kCkptVersion) + ")");
    // The flags word is reserved: a version-1 reader must refuse any
    // bit it does not understand rather than silently misinterpret a
    // future image (or a corrupted one).
    if (const std::uint64_t flags = readLe(image, 12, 4); flags != 0)
        badImage("unknown feature flags 0x" + [flags] {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%llx",
                          static_cast<unsigned long long>(flags));
            return std::string(buf);
        }());
    configDigest_ = readLe(image, 16, 8);
    const std::uint64_t len = readLe(image, 24, 8);
    if (len != image.size() - kHeaderBytes - kTrailerBytes)
        badImage("payload length " + std::to_string(len) +
                 " does not match the image size");
    payload_ = image.substr(kHeaderBytes, len);
    const std::uint64_t want =
        readLe(image, kHeaderBytes + payload_.size(), 8);
    if (ckptFnv1a(payload_) != want)
        badImage("payload checksum mismatch (corrupted image)");
}

CkptReader
CkptReader::fromStream(std::istream &in)
{
    std::ostringstream os;
    os << in.rdbuf();
    if (in.bad())
        badImage("stream read failed");
    return CkptReader(os.str());
}

void
CkptReader::requireDigest(std::uint64_t expected) const
{
    if (configDigest_ != expected) {
        badImage("config digest mismatch (image was taken from a "
                 "different machine/workload configuration)");
    }
}

void
CkptReader::need(std::size_t n) const
{
    if (payload_.size() - pos_ < n)
        badImage("payload ends mid-field (truncated image)");
}

std::uint8_t
CkptReader::u8()
{
    need(1);
    return static_cast<std::uint8_t>(
        static_cast<unsigned char>(payload_[pos_++]));
}

std::uint32_t
CkptReader::u32()
{
    need(4);
    const auto v = static_cast<std::uint32_t>(readLe(payload_, pos_, 4));
    pos_ += 4;
    return v;
}

std::uint64_t
CkptReader::u64()
{
    need(8);
    const std::uint64_t v = readLe(payload_, pos_, 8);
    pos_ += 8;
    return v;
}

double
CkptReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
CkptReader::str()
{
    const std::uint32_t n = u32();
    need(n);
    std::string v = payload_.substr(pos_, n);
    pos_ += n;
    return v;
}

void
CkptReader::expectEnd() const
{
    if (remaining() != 0)
        badImage(std::to_string(remaining()) +
                 " trailing payload bytes (layout mismatch)");
}

} // namespace piso
