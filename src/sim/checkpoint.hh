#ifndef PISO_SIM_CHECKPOINT_HH
#define PISO_SIM_CHECKPOINT_HH

/**
 * @file
 * Versioned binary serialisation for bit-exact checkpoint/restore.
 *
 * A checkpoint image is a strict container:
 *
 *     [magic "PISOCKPT" 8B][version u32][flags u32]
 *     [config digest u64][payload length u64]
 *     [payload bytes][FNV-1a(payload) u64]
 *
 * Every field is fixed-width little-endian, so an image written on one
 * host restores bit-exactly on any other. The reader validates the
 * container — magic, version, config digest, length, checksum — before
 * a single payload byte is interpreted, and every payload read is
 * bounds-checked, so truncated or corrupted images raise a structured
 * ConfigError, never undefined behaviour. Semantic inconsistencies
 * discovered while *applying* a well-formed image (e.g. a pid that the
 * replayed setup never created) are InvariantError instead.
 *
 * The writer/reader pair deliberately knows nothing about the
 * simulator: subsystems serialise themselves through
 * `save(CkptWriter&) const` / `load(CkptReader&)` pairs and the
 * Simulation owns field order and the config digest (docs/checkpoint.md
 * documents the format and the versioning policy).
 */

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/util/time.hh"

namespace piso {

/** Image container constants. */
inline constexpr char kCkptMagic[8] = {'P', 'I', 'S', 'O',
                                       'C', 'K', 'P', 'T'};

/** Bump on any payload layout change; old images are rejected. */
inline constexpr std::uint32_t kCkptVersion = 1;

/** FNV-1a 64-bit over @p data (payload checksums, config digests). */
std::uint64_t ckptFnv1a(const std::string &data);

/**
 * Appends fixed-width little-endian fields to an in-memory payload.
 * Also used to build the canonical config serialisation whose hash is
 * the image's config digest.
 */
class CkptWriter
{
  public:
    void u8(std::uint8_t v) { payload_.push_back(static_cast<char>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    // piso-lint: allow(determinism-wallclock) -- serialises a simulated Time field, not a wallclock read
    void time(Time v) { u64(v); }
    void f64(double v);
    void str(const std::string &v);

    const std::string &payload() const { return payload_; }

    /** Assemble the full image (header + payload + checksum). */
    std::string image(std::uint64_t configDigest) const;

    /** Write the full image to @p out. */
    void emit(std::ostream &out, std::uint64_t configDigest) const;

  private:
    std::string payload_;
};

/**
 * Validating reader over a checkpoint image. Construction parses and
 * checks the container; the typed accessors then consume the payload
 * with bounds checks. Any violation throws ConfigError.
 */
class CkptReader
{
  public:
    /** Parse an in-memory image; validates everything up front. */
    explicit CkptReader(const std::string &image);

    /** Slurp @p in to the end and parse it as an image. */
    static CkptReader fromStream(std::istream &in);

    /** Config digest recorded in the header. */
    std::uint64_t configDigest() const { return configDigest_; }

    /** Reject the image unless its digest matches @p expected. */
    void requireDigest(std::uint64_t expected) const;

    std::uint8_t u8();
    bool boolean() { return u8() != 0; }
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    // piso-lint: allow(determinism-wallclock) -- deserialises a simulated Time field, not a wallclock read
    Time time() { return u64(); }
    double f64();
    std::string str();

    /** Bytes of payload not yet consumed. */
    std::size_t remaining() const { return payload_.size() - pos_; }

    /** Reject the image unless the payload was consumed exactly. */
    void expectEnd() const;

  private:
    void need(std::size_t n) const;

    std::string payload_;
    std::size_t pos_ = 0;
    std::uint64_t configDigest_ = 0;
};

} // namespace piso

#endif // PISO_SIM_CHECKPOINT_HH
