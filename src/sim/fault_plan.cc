#include "src/sim/fault_plan.hh"

#include <algorithm>

#include "src/util/log.hh"

namespace piso {

const char *
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::DiskSlow:
        return "disk_slow";
      case FaultKind::DiskError:
        return "disk_error";
      case FaultKind::DiskDead:
        return "disk_dead";
      case FaultKind::CpuOffline:
        return "cpu_offline";
      case FaultKind::CpuOnline:
        return "cpu_online";
      case FaultKind::MemShrink:
        return "mem_shrink";
      case FaultKind::MemGrow:
        return "mem_grow";
    }
    return "unknown";
}

void
FaultPlan::add(const FaultEvent &ev)
{
    switch (ev.kind) {
      case FaultKind::DiskSlow:
        if (ev.factor < 1.0)
            PISO_FATAL("disk_slow factor must be >= 1, got ", ev.factor);
        if (ev.disk < 0)
            PISO_FATAL("disk_slow on negative disk ", ev.disk);
        break;
      case FaultKind::DiskError:
        if (ev.rate < 0.0 || ev.rate > 1.0)
            PISO_FATAL("disk_error rate must be in [0,1], got ", ev.rate);
        if (ev.disk < 0)
            PISO_FATAL("disk_error on negative disk ", ev.disk);
        break;
      case FaultKind::DiskDead:
        if (ev.disk < 0)
            PISO_FATAL("disk_dead on negative disk ", ev.disk);
        break;
      case FaultKind::CpuOffline:
      case FaultKind::CpuOnline:
        if (ev.cpus < 1)
            PISO_FATAL(faultKindName(ev.kind),
                       " needs a positive CPU count, got ", ev.cpus);
        break;
      case FaultKind::MemShrink:
      case FaultKind::MemGrow:
        if (ev.pages == 0)
            PISO_FATAL(faultKindName(ev.kind),
                       " needs a nonzero page count");
        break;
    }
    events_.push_back(ev);
}

FaultPlan &
FaultPlan::diskSlow(Time at, int disk, Time duration, double factor)
{
    FaultEvent ev;
    ev.kind = FaultKind::DiskSlow;
    ev.at = at;
    ev.disk = disk;
    ev.duration = duration;
    ev.factor = factor;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::diskError(Time at, int disk, Time duration, double rate)
{
    FaultEvent ev;
    ev.kind = FaultKind::DiskError;
    ev.at = at;
    ev.disk = disk;
    ev.duration = duration;
    ev.rate = rate;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::diskDead(Time at, int disk)
{
    FaultEvent ev;
    ev.kind = FaultKind::DiskDead;
    ev.at = at;
    ev.disk = disk;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::cpuOffline(Time at, int count)
{
    FaultEvent ev;
    ev.kind = FaultKind::CpuOffline;
    ev.at = at;
    ev.cpus = count;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::cpuOnline(Time at, int count)
{
    FaultEvent ev;
    ev.kind = FaultKind::CpuOnline;
    ev.at = at;
    ev.cpus = count;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::memShrink(Time at, std::uint64_t pages)
{
    FaultEvent ev;
    ev.kind = FaultKind::MemShrink;
    ev.at = at;
    ev.pages = pages;
    add(ev);
    return *this;
}

FaultPlan &
FaultPlan::memGrow(Time at, std::uint64_t pages)
{
    FaultEvent ev;
    ev.kind = FaultKind::MemGrow;
    ev.at = at;
    ev.pages = pages;
    add(ev);
    return *this;
}

std::vector<FaultEvent>
FaultPlan::schedule() const
{
    std::vector<FaultEvent> out = events_;
    std::stable_sort(out.begin(), out.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return out;
}

int
FaultPlan::maxDiskIndex() const
{
    int max = -1;
    for (const FaultEvent &ev : events_) {
        if (ev.kind == FaultKind::DiskSlow ||
            ev.kind == FaultKind::DiskError ||
            ev.kind == FaultKind::DiskDead) {
            max = std::max(max, ev.disk);
        }
    }
    return max;
}

} // namespace piso
