#ifndef PISO_SIM_LOG_HH
#define PISO_SIM_LOG_HH

/**
 * @file
 * Minimal logging and error-termination helpers.
 *
 * Follows the gem5 convention: fatal() is for user errors (bad
 * configuration, impossible workload parameters) and exits cleanly;
 * panic() is for internal invariant violations (simulator bugs) and
 * aborts so a core dump / debugger can capture the state.
 */

#include <cstdint>
#include <sstream>
#include <string>

namespace piso {

/** Verbosity levels for runtime logging. */
enum class LogLevel : std::uint8_t { Quiet = 0, Info = 1, Debug = 2 };

/** Set the global log verbosity (default: Quiet). */
void setLogLevel(LogLevel level);

/** Current global log verbosity. */
LogLevel logLevel();

namespace detail {
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void logImpl(LogLevel level, const std::string &msg);

/** Fold a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}
} // namespace detail

} // namespace piso

/** Terminate: unrecoverable *user* error (bad config, bad arguments). */
#define PISO_FATAL(...)                                                     \
    ::piso::detail::fatalImpl(__FILE__, __LINE__,                           \
                              ::piso::detail::concat(__VA_ARGS__))

/** Terminate: internal invariant violation (a simulator bug). */
#define PISO_PANIC(...)                                                     \
    ::piso::detail::panicImpl(__FILE__, __LINE__,                           \
                              ::piso::detail::concat(__VA_ARGS__))

/** Informational message, shown at LogLevel::Info and above. */
#define PISO_INFO(...)                                                      \
    ::piso::detail::logImpl(::piso::LogLevel::Info,                         \
                            ::piso::detail::concat(__VA_ARGS__))

/** Debug trace, shown only at LogLevel::Debug. */
#define PISO_DEBUG(...)                                                     \
    ::piso::detail::logImpl(::piso::LogLevel::Debug,                        \
                            ::piso::detail::concat(__VA_ARGS__))

#endif // PISO_SIM_LOG_HH
