#ifndef PISO_SIM_RANDOM_HH
#define PISO_SIM_RANDOM_HH

/**
 * @file
 * Deterministic pseudo-random source for the simulator.
 *
 * Every stochastic element of the simulation (rotational latency, page
 * touch intervals, workload jitter) draws from an Rng seeded from the
 * SystemConfig, so a run is exactly reproducible from its seed.
 */

#include <cstdint>

#include "src/sim/checkpoint.hh"
#include "src/util/time.hh"

namespace piso {

/**
 * A small, fast, seedable generator (xoshiro256**) with the handful of
 * distributions the simulator needs. Not cryptographic; deterministic
 * across platforms (no libstdc++ distribution objects are used).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (splitmix64-expanded to 256 bits). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniformRange(double lo, double hi);

    /** Uniform integer in [0, n); n must be > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Exponentially distributed double with the given mean. */
    double exponential(double mean);

    /** Exponentially distributed Time with the given mean. */
    Time exponentialTime(Time mean);

    /** Time uniform in [0, span). */
    Time uniformTime(Time span);

    /** Bernoulli trial with probability @p p of returning true. */
    bool chance(double p);

    /**
     * Fork a statistically independent child stream. Used to give each
     * subsystem its own stream so adding draws in one subsystem does not
     * perturb another.
     */
    Rng fork();

    /** Serialise the full 256-bit stream position. */
    void
    save(CkptWriter &w) const
    {
        for (std::uint64_t s : s_)
            w.u64(s);
    }

    /** Restore a stream position saved with save(). */
    void
    load(CkptReader &r)
    {
        for (std::uint64_t &s : s_)
            s = r.u64();
    }

  private:
    std::uint64_t s_[4];
};

} // namespace piso

#endif // PISO_SIM_RANDOM_HH
