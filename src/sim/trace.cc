#include "src/sim/trace.hh"

#include <cstdio>

namespace piso {

namespace {
// Per-thread trace state: each sweep worker (and each Simulation via
// TraceContextScope) gets independent mask/sink storage, so parallel
// runs cannot race on it.
thread_local TraceContext tlsDefaultContext;
thread_local TraceContext *tlsContext = nullptr;
} // namespace

TraceContext &
traceContext()
{
    return tlsContext ? *tlsContext : tlsDefaultContext;
}

TraceContext *
traceSetContext(TraceContext *ctx)
{
    TraceContext *prev = tlsContext;
    tlsContext = ctx;
    return prev;
}

void
traceEnable(TraceCat mask)
{
    traceContext().mask = mask;
}

void
traceDisable()
{
    traceContext().mask = TraceCat::None;
}

TraceCat
traceMask()
{
    return traceContext().mask;
}

void
traceSetSink(TraceSink sink)
{
    traceContext().sink = std::move(sink);
}

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Disk:
        return "disk";
      case TraceCat::Net:
        return "net";
      case TraceCat::Lock:
        return "lock";
      case TraceCat::Kernel:
        return "kernel";
      default:
        return "trace";
    }
}

void
TraceContext::emit(Time when, TraceCat cat, const std::string &msg) const
{
    if (sink) {
        sink(when, cat, msg);
        return;
    }
    // piso-lint: allow(hygiene-io) -- default trace sink when no TraceContext sink is installed; stderr keeps traces out of report streams
    std::fprintf(stderr, "%12s [%s] %s\n", formatTime(when).c_str(),
                 traceCatName(cat), msg.c_str());
}

namespace detail {

void
traceEmit(TraceCat cat, Time when, const std::string &msg)
{
    traceContext().emit(when, cat, msg);
}

} // namespace detail
} // namespace piso
