#include "src/sim/trace.hh"

#include <cstdio>

namespace piso {

namespace {
TraceCat gMask = TraceCat::None;
TraceSink gSink;
} // namespace

void
traceEnable(TraceCat mask)
{
    gMask = mask;
}

void
traceDisable()
{
    gMask = TraceCat::None;
}

TraceCat
traceMask()
{
    return gMask;
}

void
traceSetSink(TraceSink sink)
{
    gSink = std::move(sink);
}

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Sched:
        return "sched";
      case TraceCat::Mem:
        return "mem";
      case TraceCat::Disk:
        return "disk";
      case TraceCat::Net:
        return "net";
      case TraceCat::Lock:
        return "lock";
      case TraceCat::Kernel:
        return "kernel";
      default:
        return "trace";
    }
}

namespace detail {

void
traceEmit(TraceCat cat, Time when, const std::string &msg)
{
    if (gSink) {
        gSink(when, cat, msg);
        return;
    }
    std::fprintf(stderr, "%12s [%s] %s\n", formatTime(when).c_str(),
                 traceCatName(cat), msg.c_str());
}

} // namespace detail
} // namespace piso
