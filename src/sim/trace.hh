#ifndef PISO_SIM_TRACE_HH
#define PISO_SIM_TRACE_HH

/**
 * @file
 * Category-gated execution tracing (in the spirit of gem5's debug
 * flags). Tracing is off by default and costs one branch per site;
 * when a category is enabled, each site formats a line and hands it
 * to the active sink (stderr by default, or a capturing sink in
 * tests).
 *
 * @code
 *   traceEnable(TraceCat::Sched | TraceCat::Mem);
 *   ...
 *   PISO_TRACE(TraceCat::Sched, now, "dispatch p", pid, " on cpu", c);
 * @endcode
 */

#include <cstdint>
#include <functional>
#include <string>

#include "src/sim/log.hh"
#include "src/sim/time.hh"

namespace piso {

/** Trace categories; combine with |. */
enum class TraceCat : std::uint32_t
{
    None = 0,
    Sched = 1u << 0,   //!< dispatch, preemption, loans, revocation
    Mem = 1u << 1,     //!< faults, reclaim, allowed-level moves
    Disk = 1u << 2,    //!< request submit/complete
    Net = 1u << 3,     //!< message submit/complete
    Lock = 1u << 4,    //!< contention, inheritance
    Kernel = 1u << 5,  //!< daemons, barriers, process lifecycle
    All = ~0u,
};

constexpr TraceCat
operator|(TraceCat a, TraceCat b)
{
    return static_cast<TraceCat>(static_cast<std::uint32_t>(a) |
                                 static_cast<std::uint32_t>(b));
}

/** Sink receiving formatted trace lines. */
using TraceSink =
    std::function<void(Time when, TraceCat cat, const std::string &)>;

/** Enable the given categories (replaces the current mask). */
void traceEnable(TraceCat mask);

/** Disable all tracing. */
void traceDisable();

/** Currently enabled categories. */
TraceCat traceMask();

/** True when @p cat is enabled (the cheap per-site check). */
inline bool
traceActive(TraceCat cat)
{
    return (static_cast<std::uint32_t>(traceMask()) &
            static_cast<std::uint32_t>(cat)) != 0;
}

/** Route trace lines to @p sink (nullptr restores stderr). */
void traceSetSink(TraceSink sink);

/** Short name of a category ("sched", "mem", ...). */
const char *traceCatName(TraceCat cat);

namespace detail {
void traceEmit(TraceCat cat, Time when, const std::string &msg);
} // namespace detail

} // namespace piso

/** Emit a trace line if @p cat is enabled. */
#define PISO_TRACE(cat, when, ...)                                         \
    do {                                                                   \
        if (::piso::traceActive(cat)) {                                    \
            ::piso::detail::traceEmit(                                     \
                cat, when, ::piso::detail::concat(__VA_ARGS__));           \
        }                                                                  \
    } while (0)

#endif // PISO_SIM_TRACE_HH
