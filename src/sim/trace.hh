#ifndef PISO_SIM_TRACE_HH
#define PISO_SIM_TRACE_HH

/**
 * @file
 * Category-gated execution tracing (in the spirit of gem5's debug
 * flags). Tracing is off by default and costs one branch per site;
 * when a category is enabled, each site formats a line and hands it
 * to the active sink (stderr by default, or a capturing sink in
 * tests).
 *
 * @code
 *   traceEnable(TraceCat::Sched | TraceCat::Mem);
 *   ...
 *   PISO_TRACE(TraceCat::Sched, now, "dispatch p", pid, " on cpu", c);
 * @endcode
 *
 * All trace state lives in a TraceContext. Each thread has its own
 * ambient context (so concurrent Simulations — one per sweep worker —
 * never share mutable trace state), and a Simulation captures the
 * ambient context at construction and re-installs it for the duration
 * of run(). The traceEnable()/traceSetSink() free functions are thin
 * shims over the calling thread's current context, which keeps
 * piso_run and every existing test unchanged.
 */

#include <cstdint>
#include <functional>
#include <string>

#include "src/util/log.hh"
#include "src/util/time.hh"

namespace piso {

/** Trace categories; combine with |. */
enum class TraceCat : std::uint32_t
{
    None = 0,
    Sched = 1u << 0,   //!< dispatch, preemption, loans, revocation
    Mem = 1u << 1,     //!< faults, reclaim, allowed-level moves
    Disk = 1u << 2,    //!< request submit/complete
    Net = 1u << 3,     //!< message submit/complete
    Lock = 1u << 4,    //!< contention, inheritance
    Kernel = 1u << 5,  //!< daemons, barriers, process lifecycle
    All = ~0u,
};

constexpr TraceCat
operator|(TraceCat a, TraceCat b)
{
    return static_cast<TraceCat>(static_cast<std::uint32_t>(a) |
                                 static_cast<std::uint32_t>(b));
}

/** Sink receiving formatted trace lines. */
using TraceSink =
    std::function<void(Time when, TraceCat cat, const std::string &)>;

/**
 * The complete mutable state of the trace facility: the enabled
 * category mask and the sink lines are delivered to. Copyable, so a
 * Simulation can snapshot the ambient configuration and carry it to
 * whichever thread eventually calls run().
 */
struct TraceContext
{
    TraceCat mask = TraceCat::None;
    TraceSink sink;  //!< empty = format to stderr

    bool
    active(TraceCat cat) const
    {
        return (static_cast<std::uint32_t>(mask) &
                static_cast<std::uint32_t>(cat)) != 0;
    }

    /** Deliver one formatted line to the sink (or stderr). */
    void emit(Time when, TraceCat cat, const std::string &msg) const;
};

/** The calling thread's current trace context (never null). */
TraceContext &traceContext();

/**
 * Install @p ctx as the calling thread's current context (nullptr
 * restores the thread's default context).
 * @return the previously installed context pointer (maybe nullptr).
 */
TraceContext *traceSetContext(TraceContext *ctx);

/** RAII installation of a TraceContext on the current thread. */
class TraceContextScope
{
  public:
    explicit TraceContextScope(TraceContext &ctx)
        : prev_(traceSetContext(&ctx))
    {
    }

    ~TraceContextScope() { traceSetContext(prev_); }

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext *prev_;
};

/** @name Shims over the calling thread's current context */
/// @{
/** Enable the given categories (replaces the current mask). */
void traceEnable(TraceCat mask);

/** Disable all tracing. */
void traceDisable();

/** Currently enabled categories. */
TraceCat traceMask();

/** True when @p cat is enabled (the cheap per-site check). */
inline bool
traceActive(TraceCat cat)
{
    return traceContext().active(cat);
}

/** Route trace lines to @p sink (nullptr restores stderr). */
void traceSetSink(TraceSink sink);
/// @}

/** Short name of a category ("sched", "mem", ...). */
const char *traceCatName(TraceCat cat);

namespace detail {
void traceEmit(TraceCat cat, Time when, const std::string &msg);
} // namespace detail

} // namespace piso

/** Emit a trace line if @p cat is enabled. */
#define PISO_TRACE(cat, when, ...)                                         \
    do {                                                                   \
        if (::piso::traceActive(cat)) {                                    \
            ::piso::detail::traceEmit(                                     \
                cat, when, ::piso::detail::concat(__VA_ARGS__));           \
        }                                                                  \
    } while (0)

#endif // PISO_SIM_TRACE_HH
