#ifndef PISO_MACHINE_NUMA_HH
#define PISO_MACHINE_NUMA_HH

/**
 * @file
 * NUMA memory domains and a shared interconnect (bus) model.
 *
 * The paper's experiments run on a bus-based SMP where every memory
 * reference costs the same; scaling the simulated machine to hundreds
 * of CPUs makes that assumption the least realistic part of the model.
 * This module adds the two first-order effects of a big shared-memory
 * machine:
 *
 *  - **Memory domains.** CPUs and SPU home memory are striped over
 *    `domains` NUMA nodes (both by id modulo the domain count). A
 *    zero-fill page touch from a CPU in the page's home domain costs
 *    `localLatency` extra compute time; a touch from any other domain
 *    costs `remoteLatency` and crosses the interconnect.
 *
 *  - **Interconnect saturation.** Remote traffic feeds a decayed byte
 *    counter (the same half-life machinery as the disk bandwidth
 *    tracker). The estimated byte rate relative to `busBytesPerSec`
 *    inflates every remote touch by up to `1 + busSaturation`, so a
 *    machine whose remote traffic approaches the bus capacity sees
 *    super-linear memory latency — the classic reason big machines
 *    need isolation-aware placement.
 *
 * Everything is deterministic and charged through the existing
 * compute-time path (Kernel::pageFault), so the default configuration
 * (1 domain, zero latencies, no bus cap) adds exactly nothing and
 * leaves every small-machine golden byte-identical.
 */

#include <cstdint>

#include "src/sim/checkpoint.hh"
#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/** Tunables of the NUMA/bus model ([machine] config keys). */
struct NumaConfig
{
    /** Memory domains; CPUs and SPU home memory are striped over the
     *  domains by id modulo this count. 1 = uniform memory. */
    int domains = 1;

    /** Extra compute time per zero-fill page touch whose CPU sits in
     *  the page's home domain. */
    Time localLatency = 0;

    /** Extra compute time per remote zero-fill page touch (before the
     *  bus saturation factor). */
    Time remoteLatency = 0;

    /** Interconnect capacity in bytes/second; 0 = unlimited (remote
     *  latency stays flat regardless of traffic). */
    double busBytesPerSec = 0.0;

    /** Strength of the saturation penalty: a remote touch at full bus
     *  utilisation costs (1 + busSaturation) x remoteLatency. */
    double busSaturation = 0.0;

    /** Decay half-life of the remote-traffic byte counter. */
    Time busHalfLife = 100 * kMs;

    /** True when any knob departs from the free defaults. */
    bool
    enabled() const
    {
        return domains > 1 || localLatency > 0 || remoteLatency > 0;
    }
};

/** Deterministic NUMA latency + bus saturation charging. */
class NumaModel
{
  public:
    /** @param cpus CPU count of the machine (for validation only;
     *  domain mapping is pure modulo). */
    NumaModel(const NumaConfig &cfg, int cpus);

    const NumaConfig &config() const { return cfg_; }

    int domains() const { return cfg_.domains; }

    /** Home domain of @p cpu (kNoCpu maps to domain 0). */
    int domainOfCpu(CpuId cpu) const;

    /** Home domain of @p spu's memory. */
    int domainOfSpu(SpuId spu) const;

    /**
     * Charge one zero-fill page touch of @p bytes by @p cpu against
     * @p spu's home memory at time @p now, and return the extra
     * compute time it costs. Remote touches accrue bus traffic and
     * pay the current saturation factor.
     */
    Time touchCost(CpuId cpu, SpuId spu, std::uint64_t bytes, Time now);

    /** Decayed remote-traffic rate over capacity, clamped to [0, 1];
     *  0 when the bus is uncapped. */
    double busUtilization(Time now) const;

    /** @name Counters (deterministic, reported and checkpointed) */
    /// @{
    std::uint64_t localTouches() const { return localTouches_; }
    std::uint64_t remoteTouches() const { return remoteTouches_; }
    std::uint64_t busBytes() const { return busBytes_; }
    /// @}

    /** @name Checkpoint */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r);
    /// @}

  private:
    /** Decayed remote bytes outstanding at @p now. */
    double decayedTraffic(Time now) const;

    // piso-lint: allow(checkpoint-field-coverage) -- topology and
    // latency configuration, identical after setup replay.
    NumaConfig cfg_;

    /** Remote bytes, decaying by half every cfg_.busHalfLife. */
    double traffic_ = 0.0;
    Time trafficLast_ = 0;

    std::uint64_t localTouches_ = 0;
    std::uint64_t remoteTouches_ = 0;
    std::uint64_t busBytes_ = 0;
};

} // namespace piso

#endif // PISO_MACHINE_NUMA_HH
