#ifndef PISO_MACHINE_DISK_HH
#define PISO_MACHINE_DISK_HH

/**
 * @file
 * Disk device: request queue, pluggable scheduler, request lifecycle.
 *
 * The device services one request at a time. Whenever it goes idle and
 * requests are queued, it asks its DiskScheduler to pick the next one —
 * which is exactly the hook the paper's three policies (Pos / Iso /
 * PIso, Section 3.3) plug into. Per-request and per-SPU statistics
 * (queue wait, positioning latency, sectors moved) feed Tables 3 and 4.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/core/spu_table.hh"
#include "src/machine/disk_model.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/ids.hh"
#include "src/sim/random.hh"
#include "src/sim/stats.hh"

namespace piso {

/** One I/O request as seen by the device and its scheduler. */
struct DiskRequest
{
    std::uint64_t id = 0;          //!< assigned by the device on submit
    SpuId spu = kNoSpu;            //!< SPU this request is scheduled under
    Pid pid = kNoPid;              //!< requesting process (kNoPid: daemon)
    std::uint64_t startSector = 0;
    std::uint32_t sectors = 0;
    bool write = false;
    Time issueTime = 0;            //!< filled in by the device

    /** Set by the device when the request did not complete
     *  successfully (injected transient error or dead disk). */
    bool failed = false;

    /** Invoked at completion time (after stats are recorded). */
    std::function<void(const DiskRequest &)> onComplete;

    /**
     * Bandwidth charge breakdown. Normally empty, meaning all sectors
     * are charged to @ref spu. Batched delayed writes are *scheduled*
     * under the shared SPU but their pages are *charged* to the owning
     * user SPUs (Section 3.3); such requests carry the per-SPU sector
     * split here.
     */
    std::vector<std::pair<SpuId, std::uint32_t>> charges;
};

/**
 * Policy deciding which queued request the head serves next.
 * Implementations: CScanScheduler (IRIX "Pos"), IsoDiskScheduler
 * (blind fairness) and PisoDiskScheduler (fairness + head position).
 */
class DiskScheduler
{
  public:
    virtual ~DiskScheduler() = default;

    /**
     * Choose the next request to service.
     * @param queue      Pending requests; never empty.
     * @param headSector Sector the head currently sits after.
     * @param now        Current simulated time.
     * @return index into @p queue of the chosen request.
     */
    virtual std::size_t pick(const std::deque<DiskRequest> &queue,
                             std::uint64_t headSector, Time now) = 0;

    /**
     * Notification that a request finished (the paper re-checks the
     * fairness criterion "after each disk request"). Default: no-op.
     */
    virtual void onComplete(const DiskRequest &req, Time now);
};

/** Aggregated per-SPU statistics for one disk. */
struct SpuDiskStats
{
    Counter requests;
    Counter sectors;
    Counter errors;         //!< requests completed with failed = true
    Accumulator waitMs;     //!< queue wait per request, ms
    Accumulator serviceMs;  //!< full service time per request, ms

    void save(CkptWriter &w) const;
    void load(CkptReader &r);
};

/** Device-wide statistics. */
struct DiskStats
{
    Counter requests;
    Counter sectors;
    Counter errors;            //!< requests completed with failed = true
    Accumulator waitMs;        //!< queue wait, ms
    Accumulator positionMs;    //!< seek + rotational per request, ms
    Accumulator seekMs;        //!< seek only, ms
    Time busyTime = 0;         //!< total time servicing requests

    void save(CkptWriter &w) const;
    void load(CkptReader &r);
};

/**
 * A single disk drive: HP97560-modelled mechanism plus a request queue
 * drained under a pluggable scheduling policy.
 */
class DiskDevice
{
  public:
    /**
     * @param events    Simulation event queue (not owned).
     * @param model     Service-time model (copied).
     * @param scheduler Scheduling policy; must not be null.
     * @param rng       Private random stream (rotational latency).
     * @param name      Label for logs.
     */
    DiskDevice(EventQueue &events, const DiskModel &model,
               std::unique_ptr<DiskScheduler> scheduler, Rng rng,
               std::string name = "disk");

    /** Enqueue a request; service begins immediately if idle.
     *  @return the id assigned to the request. */
    std::uint64_t submit(DiskRequest req);

    /** Replace the scheduling policy (only while idle with empty queue —
     *  used by experiment setup, not mid-run). */
    void setScheduler(std::unique_ptr<DiskScheduler> scheduler);

    /** Sector the head currently sits after. */
    std::uint64_t headSector() const { return headSector_; }

    /** Requests waiting (not counting the one in service). */
    std::size_t queueDepth() const { return queue_.size(); }

    /** True while a request is being serviced. */
    bool busy() const { return busy_; }

    /** @name Fault injection (driven by the Simulation's FaultPlan) */
    /// @{
    /** Multiply every subsequent request's service time by @p factor
     *  (degraded mechanism; 1.0 restores full speed). */
    void setSlowFactor(double factor);

    /** Fail subsequent requests with probability @p rate (after their
     *  normal service time — the media retried and gave up). */
    void setErrorRate(double rate);

    /**
     * Permanent death: the in-flight request (if any) and every queued
     * or future request completes immediately with failed = true.
     * Irreversible.
     */
    void kill();

    /** True once kill() has been called. */
    bool dead() const { return dead_; }

    double slowFactor() const { return slowFactor_; }
    double errorRate() const { return errorRate_; }
    /// @}

    /** Device-wide statistics. */
    const DiskStats &stats() const { return stats_; }

    /** Per-SPU statistics (empty entry if the SPU never did I/O). */
    const SpuDiskStats &spuStats(SpuId spu) const;

    /** The service-time model in use. */
    const DiskModel &model() const { return model_; }

    /** The scheduling policy in use (checkpoint code reaches the
     *  fair policies' bandwidth trackers through this). */
    DiskScheduler &scheduler() { return *scheduler_; }
    const DiskScheduler &scheduler() const { return *scheduler_; }

    const std::string &name() const { return name_; }

    /** Serialise head/fault/RNG/stats state. Only legal while idle
     *  with an empty queue (in-flight callbacks cannot serialise). */
    void save(CkptWriter &w) const;

    /** Restore state saved with save(). */
    void load(CkptReader &r);

  private:
    void startNext();
    void complete(DiskRequest req, DiskServiceTime st);

    /** Complete @p req immediately with failed = true, bypassing the
     *  mechanism (dead device). */
    void failFast(DiskRequest req);

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // the event queue is imaged by Simulation, not per device.
    EventQueue &events_;
    // piso-lint: allow(checkpoint-field-coverage) -- HP97560 service
    // model parameters, fixed at construction.
    DiskModel model_;
    // piso-lint: allow(checkpoint-field-coverage) -- policy object
    // recreated by setup replay; its tracker is imaged separately.
    std::unique_ptr<DiskScheduler> scheduler_;
    Rng rng_;
    // piso-lint: allow(checkpoint-field-coverage) -- log label, fixed
    // at construction (save reads it only for error text).
    std::string name_;

    // piso-lint: allow(checkpoint-field-coverage) -- save() throws
    // unless the queue is empty; nothing to image.
    std::deque<DiskRequest> queue_;
    // piso-lint: allow(checkpoint-field-coverage) -- save() throws
    // unless idle; always false in any image.
    bool busy_ = false;
    double slowFactor_ = 1.0;
    double errorRate_ = 0.0;
    bool dead_ = false;
    std::uint64_t headSector_ = 0;
    std::uint64_t nextId_ = 1;

    DiskStats stats_;
    mutable SpuTable<SpuDiskStats> spuStats_;
};

} // namespace piso

#endif // PISO_MACHINE_DISK_HH
