#ifndef PISO_MACHINE_DISK_MODEL_HH
#define PISO_MACHINE_DISK_MODEL_HH

/**
 * @file
 * Service-time model of an HP 97560 disk drive.
 *
 * The paper's disk experiments use the HP 97560 model of Kotz, Toh and
 * Radhakrishnan [KTR94] (itself derived from Ruemmler & Wilkes'
 * measurements). We reproduce the parts that matter for scheduling
 * studies: the two-regime seek curve, rotational latency, per-sector
 * transfer time, head-switch cost, and a fixed controller overhead.
 *
 * The paper additionally runs the model with "a scaling factor of two
 * ... half the seek latency" to shorten simulations; the same knob is
 * exposed here as DiskParams::seekScale.
 */

#include <cstdint>

#include "src/sim/random.hh"
#include "src/util/time.hh"

namespace piso {

/** Physical and timing parameters of the modelled drive.
 *  Defaults are the HP 97560 (1.3 GB, 4002 RPM). */
struct DiskParams
{
    std::uint32_t cylinders = 1962;
    std::uint32_t surfaces = 19;        //!< tracks per cylinder
    std::uint32_t sectorsPerTrack = 72;
    std::uint32_t sectorBytes = 512;

    double rpm = 4002.0;

    /** Seek time for d cylinders: shortA + shortB*sqrt(d) ms when
     *  d <= shortLimit, else longA + longB*d ms (Ruemmler & Wilkes). */
    double seekShortAMs = 3.24;
    double seekShortBMs = 0.400;
    std::uint32_t seekShortLimit = 383;
    double seekLongAMs = 8.00;
    double seekLongBMs = 0.008;

    /** Head (track) switch time within a cylinder. */
    double headSwitchMs = 1.6;

    /** Fixed per-request controller/SCSI overhead. */
    double controllerOverheadMs = 1.1;

    /** Multiplier on seek time; the paper uses 0.5 ("scaling factor of
     *  two") for its disk experiments. 1.0 = unscaled drive. */
    double seekScale = 1.0;
};

/** Breakdown of one request's service time. */
struct DiskServiceTime
{
    Time seek = 0;        //!< arm movement
    Time rotational = 0;  //!< wait for the first sector
    Time transfer = 0;    //!< media transfer incl. head switches
    Time overhead = 0;    //!< controller overhead

    Time total() const { return seek + rotational + transfer + overhead; }
};

/**
 * Pure service-time calculator; owns no queue and no clock. The
 * DiskDevice drives it.
 */
class DiskModel
{
  public:
    explicit DiskModel(const DiskParams &params = DiskParams{});

    const DiskParams &params() const { return params_; }

    /** Total addressable sectors on the drive. */
    std::uint64_t totalSectors() const { return totalSectors_; }

    /** Cylinder containing @p sector. */
    std::uint32_t cylinderOf(std::uint64_t sector) const;

    /** Time for the arm to move @p fromCyl -> @p toCyl (already scaled
     *  by seekScale). Zero when the cylinders are equal. */
    Time seekTime(std::uint32_t fromCyl, std::uint32_t toCyl) const;

    /** One full platter rotation. */
    Time rotationTime() const { return rotationTime_; }

    /** Random rotational latency, uniform in [0, rotationTime). */
    Time rotationalLatency(Rng &rng) const;

    /** Media transfer time for @p sectors contiguous sectors, including
     *  head switches at track boundaries. */
    Time transferTime(std::uint64_t sectors) const;

    /**
     * Full service time for a request starting at @p startSector for
     * @p sectors sectors, with the head currently over the cylinder of
     * @p headSector. Draws rotational latency from @p rng.
     */
    DiskServiceTime service(std::uint64_t headSector,
                            std::uint64_t startSector,
                            std::uint64_t sectors, Rng &rng) const;

  private:
    DiskParams params_;
    std::uint64_t totalSectors_;
    Time rotationTime_;
    Time sectorTime_;
};

} // namespace piso

#endif // PISO_MACHINE_DISK_MODEL_HH
