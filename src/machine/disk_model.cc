#include "src/machine/disk_model.hh"

#include <cmath>

#include "src/util/log.hh"

namespace piso {

DiskModel::DiskModel(const DiskParams &params)
    : params_(params)
{
    if (params_.cylinders == 0 || params_.surfaces == 0 ||
        params_.sectorsPerTrack == 0) {
        PISO_FATAL("disk geometry has a zero dimension");
    }
    if (params_.rpm <= 0.0)
        PISO_FATAL("disk rpm must be positive, got ", params_.rpm);
    if (params_.seekScale <= 0.0)
        PISO_FATAL("seekScale must be positive, got ", params_.seekScale);

    totalSectors_ = static_cast<std::uint64_t>(params_.cylinders) *
                    params_.surfaces * params_.sectorsPerTrack;
    // (60 / rpm) seconds per rotation.
    rotationTime_ = fromSeconds(60.0 / params_.rpm);
    sectorTime_ = rotationTime_ / params_.sectorsPerTrack;
}

std::uint32_t
DiskModel::cylinderOf(std::uint64_t sector) const
{
    if (sector >= totalSectors_) {
        PISO_PANIC("sector ", sector, " beyond end of disk (",
                   totalSectors_, ")");
    }
    const std::uint64_t per_cyl =
        static_cast<std::uint64_t>(params_.surfaces) *
        params_.sectorsPerTrack;
    return static_cast<std::uint32_t>(sector / per_cyl);
}

Time
DiskModel::seekTime(std::uint32_t fromCyl, std::uint32_t toCyl) const
{
    if (fromCyl == toCyl)
        return 0;
    const std::uint32_t d =
        fromCyl > toCyl ? fromCyl - toCyl : toCyl - fromCyl;
    double ms;
    if (d <= params_.seekShortLimit) {
        ms = params_.seekShortAMs +
             params_.seekShortBMs * std::sqrt(static_cast<double>(d));
    } else {
        ms = params_.seekLongAMs +
             params_.seekLongBMs * static_cast<double>(d);
    }
    return fromMillis(ms * params_.seekScale);
}

Time
DiskModel::rotationalLatency(Rng &rng) const
{
    return rng.uniformTime(rotationTime_);
}

Time
DiskModel::transferTime(std::uint64_t sectors) const
{
    if (sectors == 0)
        return 0;
    const Time media = sectorTime_ * sectors;
    // A head switch each time the transfer crosses a track boundary.
    const std::uint64_t switches = (sectors - 1) / params_.sectorsPerTrack;
    return media + switches * fromMillis(params_.headSwitchMs);
}

DiskServiceTime
DiskModel::service(std::uint64_t headSector, std::uint64_t startSector,
                   std::uint64_t sectors, Rng &rng) const
{
    if (sectors == 0)
        PISO_PANIC("zero-length disk request");
    if (startSector + sectors > totalSectors_) {
        PISO_PANIC("request [", startSector, ", +", sectors,
                   ") beyond end of disk");
    }

    DiskServiceTime st;
    const std::uint32_t from = cylinderOf(headSector);
    const std::uint32_t to = cylinderOf(startSector);
    st.seek = seekTime(from, to);
    // Sequential continuation (same cylinder, adjacent start) skips the
    // rotational delay: the head is already in position.
    if (st.seek == 0 && startSector == headSector) {
        st.rotational = 0;
    } else {
        st.rotational = rotationalLatency(rng);
    }
    st.transfer = transferTime(sectors);
    st.overhead = fromMillis(params_.controllerOverheadMs);
    return st;
}

} // namespace piso
