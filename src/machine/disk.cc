#include "src/machine/disk.hh"

#include "src/util/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"

namespace piso {

void
DiskScheduler::onComplete(const DiskRequest &, Time)
{
}

DiskDevice::DiskDevice(EventQueue &events, const DiskModel &model,
                       std::unique_ptr<DiskScheduler> scheduler, Rng rng,
                       std::string name)
    : events_(events), model_(model), scheduler_(std::move(scheduler)),
      rng_(rng), name_(std::move(name))
{
    if (!scheduler_)
        PISO_FATAL("disk '", name_, "' constructed without a scheduler");
}

std::uint64_t
DiskDevice::submit(DiskRequest req)
{
    if (req.sectors == 0)
        PISO_PANIC("zero-length request submitted to ", name_);
    if (req.startSector + req.sectors > model_.totalSectors())
        PISO_PANIC("request beyond end of ", name_);

    req.id = nextId_++;
    req.issueTime = events_.now();
    if (dead_) {
        failFast(std::move(req));
        return nextId_ - 1;
    }
    queue_.push_back(std::move(req));
    if (!busy_)
        startNext();
    return nextId_ - 1;
}

void
DiskDevice::setSlowFactor(double factor)
{
    if (factor < 1.0)
        PISO_FATAL("slow factor < 1 for disk '", name_, "'");
    slowFactor_ = factor;
}

void
DiskDevice::setErrorRate(double rate)
{
    if (rate < 0.0 || rate > 1.0)
        PISO_FATAL("error rate outside [0,1] for disk '", name_, "'");
    errorRate_ = rate;
}

void
DiskDevice::kill()
{
    if (dead_)
        return;
    dead_ = true;
    PISO_TRACE(TraceCat::Disk, events_.now(), name_, " died");
    // The in-flight request (if any) completes through complete(),
    // which marks it failed because the device is now dead. Queued
    // requests fail immediately.
    std::deque<DiskRequest> drained;
    drained.swap(queue_);
    for (DiskRequest &req : drained)
        failFast(std::move(req));
}

void
DiskDevice::failFast(DiskRequest req)
{
    req.failed = true;
    events_.scheduleAfter(
        0,
        [this, r = std::move(req)]() mutable {
            stats_.requests.add();
            stats_.errors.add();
            auto &ss = spuStats_[r.spu];
            ss.requests.add();
            ss.errors.add();
            if (r.onComplete)
                r.onComplete(r);
        },
        "diskFailFast");
}

void
DiskDevice::setScheduler(std::unique_ptr<DiskScheduler> scheduler)
{
    if (!scheduler)
        PISO_FATAL("null scheduler for disk '", name_, "'");
    if (busy_ || !queue_.empty())
        PISO_FATAL("cannot swap scheduler on active disk '", name_, "'");
    scheduler_ = std::move(scheduler);
}

const SpuDiskStats &
DiskDevice::spuStats(SpuId spu) const
{
    return spuStats_[spu];
}

void
DiskDevice::startNext()
{
    if (queue_.empty())
        return;

    const std::size_t idx =
        scheduler_->pick(queue_, headSector_, events_.now());
    if (idx >= queue_.size())
        PISO_PANIC("disk scheduler picked index ", idx, " of ",
                   queue_.size());

    DiskRequest req = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

    DiskServiceTime st = model_.service(headSector_, req.startSector,
                                        req.sectors, rng_);
    if (slowFactor_ > 1.0) {
        st.seek = static_cast<Time>(static_cast<double>(st.seek) *
                                    slowFactor_);
        st.rotational = static_cast<Time>(
            static_cast<double>(st.rotational) * slowFactor_);
        st.transfer = static_cast<Time>(
            static_cast<double>(st.transfer) * slowFactor_);
        st.overhead = static_cast<Time>(
            static_cast<double>(st.overhead) * slowFactor_);
    }
    // Transient media error: the drive spends the full service time
    // retrying internally, then reports the failure.
    if (errorRate_ > 0.0 && rng_.chance(errorRate_))
        req.failed = true;

    const Time wait = events_.now() - req.issueTime;
    stats_.waitMs.sample(toMillis(wait));
    stats_.positionMs.sample(toMillis(st.seek + st.rotational));
    stats_.seekMs.sample(toMillis(st.seek));

    auto &ss = spuStats_[req.spu];
    ss.waitMs.sample(toMillis(wait));
    ss.serviceMs.sample(toMillis(st.total()));

    busy_ = true;
    events_.scheduleAfter(
        st.total(),
        [this, r = std::move(req), st]() mutable {
            complete(std::move(r), st);
        },
        "diskComplete");
}

void
DiskDevice::complete(DiskRequest req, DiskServiceTime st)
{
    // A device that died mid-service loses the request it was working
    // on along with everything else.
    if (dead_)
        req.failed = true;

    PISO_TRACE(TraceCat::Disk, events_.now(), name_, " ",
               req.write ? "write" : "read", " spu", req.spu, " [",
               req.startSector, ",+", req.sectors, ") ",
               req.failed ? "FAILED" : "done");
    headSector_ = req.startSector + req.sectors;
    if (headSector_ >= model_.totalSectors())
        headSector_ = 0;

    stats_.requests.add();
    stats_.sectors.add(req.sectors);
    stats_.busyTime += st.total();
    if (req.failed)
        stats_.errors.add();

    auto &ss = spuStats_[req.spu];
    ss.requests.add();
    ss.sectors.add(req.sectors);
    if (req.failed)
        ss.errors.add();

    scheduler_->onComplete(req, events_.now());
    busy_ = false;

    if (req.onComplete)
        req.onComplete(req);

    // The callback may have queued more work.
    if (!busy_ && !queue_.empty())
        startNext();
}

void
SpuDiskStats::save(CkptWriter &w) const
{
    requests.save(w);
    sectors.save(w);
    errors.save(w);
    waitMs.save(w);
    serviceMs.save(w);
}

void
SpuDiskStats::load(CkptReader &r)
{
    requests.load(r);
    sectors.load(r);
    errors.load(r);
    waitMs.load(r);
    serviceMs.load(r);
}

void
DiskStats::save(CkptWriter &w) const
{
    requests.save(w);
    sectors.save(w);
    errors.save(w);
    waitMs.save(w);
    positionMs.save(w);
    seekMs.save(w);
    w.time(busyTime);
}

void
DiskStats::load(CkptReader &r)
{
    requests.load(r);
    sectors.load(r);
    errors.load(r);
    waitMs.load(r);
    positionMs.load(r);
    seekMs.load(r);
    busyTime = r.time();
}

void
DiskDevice::save(CkptWriter &w) const
{
    if (busy_ || !queue_.empty()) {
        throw InvariantError("disk '" + name_ +
                             "' has in-flight or queued requests at "
                             "checkpoint time (not I/O-quiescent)");
    }
    w.u64(headSector_);
    w.u64(nextId_);
    w.f64(slowFactor_);
    w.f64(errorRate_);
    w.boolean(dead_);
    rng_.save(w);
    stats_.save(w);
    spuStats_.saveTable(
        w, [](CkptWriter &wr, const SpuDiskStats &s) { s.save(wr); });
}

void
DiskDevice::load(CkptReader &r)
{
    headSector_ = r.u64();
    nextId_ = r.u64();
    slowFactor_ = r.f64();
    errorRate_ = r.f64();
    dead_ = r.boolean();
    rng_.load(r);
    stats_.load(r);
    spuStats_.loadTable(
        r, [](CkptReader &rd, SpuDiskStats &s) { s.load(rd); });
}

} // namespace piso
