#include "src/machine/network.hh"

#include "src/util/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"

namespace piso {

void
NetScheduler::onComplete(const NetMessage &, Time)
{
}

std::size_t
FifoNetScheduler::pick(const std::deque<NetMessage> &, Time)
{
    return 0;
}

NetworkInterface::NetworkInterface(EventQueue &events, double bitsPerSec,
                                   std::unique_ptr<NetScheduler> scheduler,
                                   std::string name,
                                   Time perMessageOverhead)
    : events_(events), bitsPerSec_(bitsPerSec),
      scheduler_(std::move(scheduler)), name_(std::move(name)),
      overhead_(perMessageOverhead)
{
    if (bitsPerSec_ <= 0.0)
        PISO_FATAL("link '", name_, "' bandwidth must be positive");
    if (!scheduler_)
        PISO_FATAL("link '", name_, "' constructed without a scheduler");
}

Time
NetworkInterface::transmitTime(std::uint64_t bytes) const
{
    const double seconds =
        static_cast<double>(bytes) * 8.0 / bitsPerSec_;
    return overhead_ + fromSeconds(seconds);
}

std::uint64_t
NetworkInterface::submit(NetMessage msg)
{
    if (msg.bytes == 0)
        PISO_PANIC("zero-length message on ", name_);
    msg.id = nextId_++;
    msg.issueTime = events_.now();
    queue_.push_back(std::move(msg));
    if (!busy_)
        startNext();
    return nextId_ - 1;
}

const SpuNetStats &
NetworkInterface::spuStats(SpuId spu) const
{
    return spuStats_[spu];
}

void
NetworkInterface::startNext()
{
    if (queue_.empty())
        return;

    const std::size_t idx = scheduler_->pick(queue_, events_.now());
    if (idx >= queue_.size())
        PISO_PANIC("net scheduler picked index ", idx, " of ",
                   queue_.size());

    NetMessage msg = std::move(queue_[idx]);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(idx));

    auto &ss = spuStats_[msg.spu];
    ss.waitMs.sample(toMillis(events_.now() - msg.issueTime));

    busy_ = true;
    events_.scheduleAfter(
        transmitTime(msg.bytes),
        [this, m = std::move(msg)]() mutable {
            total_.add();
            PISO_TRACE(TraceCat::Net, events_.now(), name_, " sent ",
                       m.bytes, "B for spu", m.spu);
            auto &stats = spuStats_[m.spu];
            stats.messages.add();
            stats.bytes.add(m.bytes);
            scheduler_->onComplete(m, events_.now());
            busy_ = false;
            if (m.onComplete)
                m.onComplete(m);
            if (!busy_ && !queue_.empty())
                startNext();
        },
        "netTx");
}

void
NetworkInterface::save(CkptWriter &w) const
{
    if (busy_ || !queue_.empty()) {
        throw InvariantError("network '" + name_ +
                             "' has in-flight or queued messages at "
                             "checkpoint time (not quiescent)");
    }
    w.u64(nextId_);
    total_.save(w);
    spuStats_.saveTable(
        w, [](CkptWriter &wr, const SpuNetStats &s) { s.save(wr); });
}

void
NetworkInterface::load(CkptReader &r)
{
    nextId_ = r.u64();
    total_.load(r);
    spuStats_.loadTable(
        r, [](CkptReader &rd, SpuNetStats &s) { s.load(rd); });
}

} // namespace piso
