#include "src/machine/numa.hh"

#include <algorithm>
#include <cmath>

#include "src/util/log.hh"

namespace piso {

NumaModel::NumaModel(const NumaConfig &cfg, int cpus) : cfg_(cfg)
{
    if (cfg_.domains < 1)
        PISO_FATAL("NUMA domain count must be >= 1, got ", cfg_.domains);
    if (cfg_.domains > cpus)
        PISO_FATAL("NUMA domain count ", cfg_.domains,
                   " exceeds the machine's ", cpus, " CPUs");
    if (cfg_.busBytesPerSec < 0.0)
        PISO_FATAL("bus capacity must be >= 0 bytes/s");
    if (cfg_.busSaturation < 0.0)
        PISO_FATAL("bus saturation factor must be >= 0");
    if (cfg_.busHalfLife == 0)
        PISO_FATAL("bus traffic half-life must be non-zero");
}

int
NumaModel::domainOfCpu(CpuId cpu) const
{
    if (cpu == kNoCpu)
        return 0;
    return static_cast<int>(cpu) % cfg_.domains;
}

int
NumaModel::domainOfSpu(SpuId spu) const
{
    if (spu < 0)
        return 0;
    return static_cast<int>(spu) % cfg_.domains;
}

double
NumaModel::decayedTraffic(Time now) const
{
    if (now <= trafficLast_ || traffic_ == 0.0)
        return traffic_;
    const double halves = static_cast<double>(now - trafficLast_) /
                          static_cast<double>(cfg_.busHalfLife);
    return traffic_ * std::exp2(-halves);
}

double
NumaModel::busUtilization(Time now) const
{
    if (cfg_.busBytesPerSec <= 0.0)
        return 0.0;
    // The decayed counter holds roughly rate x halfLife / ln 2 bytes in
    // steady state; invert that to estimate the byte rate.
    const double rate = decayedTraffic(now) * std::log(2.0) /
                        toSeconds(cfg_.busHalfLife);
    return std::clamp(rate / cfg_.busBytesPerSec, 0.0, 1.0);
}

Time
NumaModel::touchCost(CpuId cpu, SpuId spu, std::uint64_t bytes, Time now)
{
    const bool local = domainOfCpu(cpu) == domainOfSpu(spu);
    if (local) {
        ++localTouches_;
        return cfg_.localLatency;
    }
    ++remoteTouches_;
    busBytes_ += bytes;
    // Saturation factor from the traffic *before* this touch, then
    // accrue the touch — one touch never inflates itself.
    const double factor = 1.0 + cfg_.busSaturation * busUtilization(now);
    traffic_ = decayedTraffic(now) + static_cast<double>(bytes);
    trafficLast_ = now;
    return static_cast<Time>(
        static_cast<double>(cfg_.remoteLatency) * factor);
}

void
NumaModel::save(CkptWriter &w) const
{
    w.f64(traffic_);
    w.time(trafficLast_);
    w.u64(localTouches_);
    w.u64(remoteTouches_);
    w.u64(busBytes_);
}

void
NumaModel::load(CkptReader &r)
{
    traffic_ = r.f64();
    trafficLast_ = r.time();
    localTouches_ = r.u64();
    remoteTouches_ = r.u64();
    busBytes_ = r.u64();
}

} // namespace piso
