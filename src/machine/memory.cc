#include "src/machine/memory.hh"

#include "src/util/log.hh"

namespace piso {

PhysicalMemory::PhysicalMemory(std::uint64_t totalBytes,
                               std::uint32_t pageBytes)
    : pageBytes_(pageBytes)
{
    if (pageBytes_ == 0)
        PISO_FATAL("page size must be non-zero");
    totalPages_ = totalBytes / pageBytes_;
    if (totalPages_ == 0)
        PISO_FATAL("memory of ", totalBytes, " bytes holds no pages");
    freePages_ = totalPages_;
}

bool
PhysicalMemory::allocate(std::uint64_t n)
{
    if (n > freePages_)
        return false;
    freePages_ -= n;
    return true;
}

void
PhysicalMemory::release(std::uint64_t n)
{
    if (pendingRetire_ > 0) {
        const std::uint64_t retired = std::min(pendingRetire_, n);
        pendingRetire_ -= retired;
        totalPages_ -= retired;
        n -= retired;
    }
    if (freePages_ + n > totalPages_)
        PISO_PANIC("releasing ", n, " pages overflows the frame pool");
    freePages_ += n;
}

std::uint64_t
PhysicalMemory::shrink(std::uint64_t n)
{
    // Keep at least one frame of eventual capacity so policies always
    // have something to divide.
    const std::uint64_t capacity = totalPages_ - pendingRetire_;
    if (n >= capacity)
        n = capacity - 1;
    const std::uint64_t immediate = std::min(n, freePages_);
    freePages_ -= immediate;
    totalPages_ -= immediate;
    pendingRetire_ += n - immediate;
    return immediate;
}

void
PhysicalMemory::grow(std::uint64_t n)
{
    const std::uint64_t cancelled = std::min(pendingRetire_, n);
    pendingRetire_ -= cancelled;
    n -= cancelled;
    totalPages_ += n;
    freePages_ += n;
}

} // namespace piso
