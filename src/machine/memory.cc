#include "src/machine/memory.hh"

#include "src/sim/log.hh"

namespace piso {

PhysicalMemory::PhysicalMemory(std::uint64_t totalBytes,
                               std::uint32_t pageBytes)
    : pageBytes_(pageBytes)
{
    if (pageBytes_ == 0)
        PISO_FATAL("page size must be non-zero");
    totalPages_ = totalBytes / pageBytes_;
    if (totalPages_ == 0)
        PISO_FATAL("memory of ", totalBytes, " bytes holds no pages");
    freePages_ = totalPages_;
}

bool
PhysicalMemory::allocate(std::uint64_t n)
{
    if (n > freePages_)
        return false;
    freePages_ -= n;
    return true;
}

void
PhysicalMemory::release(std::uint64_t n)
{
    if (freePages_ + n > totalPages_)
        PISO_PANIC("releasing ", n, " pages overflows the frame pool");
    freePages_ += n;
}

} // namespace piso
