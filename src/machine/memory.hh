#ifndef PISO_MACHINE_MEMORY_HH
#define PISO_MACHINE_MEMORY_HH

/**
 * @file
 * Physical memory as a pool of page frames.
 *
 * Identity of individual frames is irrelevant to the paper's policies —
 * only *counts* matter (how many frames each SPU holds against its
 * entitled/allowed levels) — so this is a counted pool. Per-SPU
 * accounting lives in the VM layer (src/os/vm) and the memory sharing
 * policy (src/core/mem_policy).
 */

#include <cstdint>

#include "src/sim/checkpoint.hh"

namespace piso {

/** A counted pool of equal-sized page frames. */
class PhysicalMemory
{
  public:
    /**
     * @param totalBytes Capacity of the machine's RAM.
     * @param pageBytes  Frame size (default 4 KB).
     */
    explicit PhysicalMemory(std::uint64_t totalBytes,
                            std::uint32_t pageBytes = 4096);

    /** Frame size in bytes. */
    std::uint32_t pageBytes() const { return pageBytes_; }

    /** Usable frame capacity. Frames owed to an in-progress shrink()
     *  are already excluded, so policies sizing against this value
     *  immediately target the degraded pool. */
    std::uint64_t totalPages() const { return totalPages_ - pendingRetire_; }

    /** Frames currently unallocated. */
    std::uint64_t freePages() const { return freePages_; }

    /** Frames currently allocated. During a shrink this may exceed
     *  totalPages() until pageout returns the owed frames. */
    std::uint64_t usedPages() const { return totalPages_ - freePages_; }

    /**
     * Take @p n frames from the free pool.
     * @return true on success; false (and no change) if fewer than
     *         @p n frames are free.
     */
    bool allocate(std::uint64_t n = 1);

    /** Return @p n frames to the free pool. Frames owed to a pending
     *  shrink() are retired instead of freed. */
    void release(std::uint64_t n = 1);

    /**
     * Retire @p n frames (fault injection: memory going away).
     * Free frames leave immediately; the remainder is recorded as a
     * pending retirement that release() absorbs, so totalPages()
     * shrinks as the allocated frames actually come back. Capacity
     * never drops below one frame.
     * @return frames retired immediately.
     */
    std::uint64_t shrink(std::uint64_t n);

    /** Add @p n frames (memory coming back). Cancels pending
     *  retirements first, then grows the free pool. */
    void grow(std::uint64_t n);

    /** Frames still owed to a shrink (retired as they are freed). */
    std::uint64_t pendingRetire() const { return pendingRetire_; }

    void
    save(CkptWriter &w) const
    {
        w.u64(totalPages_);
        w.u64(freePages_);
        w.u64(pendingRetire_);
    }

    void
    load(CkptReader &r)
    {
        totalPages_ = r.u64();
        freePages_ = r.u64();
        pendingRetire_ = r.u64();
    }

  private:
    // piso-lint: allow(checkpoint-field-coverage) -- page size is
    // machine configuration, identical after setup replay.
    std::uint32_t pageBytes_;
    std::uint64_t totalPages_;
    std::uint64_t freePages_;
    std::uint64_t pendingRetire_ = 0;
};

} // namespace piso

#endif // PISO_MACHINE_MEMORY_HH
