#ifndef PISO_MACHINE_NETWORK_HH
#define PISO_MACHINE_NETWORK_HH

/**
 * @file
 * Network interface model.
 *
 * The paper does not implement network-bandwidth isolation but states
 * (Sections 3 and 5) that "the techniques we describe would apply to
 * it as well ... similar to that of disk bandwidth, without the
 * complication of head position". This module provides the substrate:
 * a link with finite bandwidth, a message queue drained under a
 * pluggable scheduler (FIFO baseline vs the fair policy in
 * src/core/net_fair.hh), and per-SPU accounting.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>

#include "src/core/spu_table.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/ids.hh"
#include "src/sim/stats.hh"
#include "src/util/time.hh"

namespace piso {

/** One message queued for transmission. */
struct NetMessage
{
    std::uint64_t id = 0;     //!< assigned by the interface
    SpuId spu = kNoSpu;
    Pid pid = kNoPid;
    std::uint64_t bytes = 0;
    Time issueTime = 0;       //!< filled in by the interface

    /** Invoked when the last bit leaves the wire. */
    std::function<void(const NetMessage &)> onComplete;
};

/** Policy choosing the next message to transmit. */
class NetScheduler
{
  public:
    virtual ~NetScheduler() = default;

    /** Index into @p queue (never empty) of the next message. */
    virtual std::size_t pick(const std::deque<NetMessage> &queue,
                             Time now) = 0;

    /** Notification after a message finished transmitting. */
    virtual void onComplete(const NetMessage &msg, Time now);
};

/** The baseline: strict FIFO, no notion of SPUs — a bulk sender can
 *  starve everyone behind it. */
class FifoNetScheduler : public NetScheduler
{
  public:
    std::size_t pick(const std::deque<NetMessage> &queue,
                     Time now) override;
};

/** Per-SPU transmit statistics. */
struct SpuNetStats
{
    Counter messages;
    Counter bytes;
    Accumulator waitMs;  //!< queue wait per message

    void
    save(CkptWriter &w) const
    {
        messages.save(w);
        bytes.save(w);
        waitMs.save(w);
    }

    void
    load(CkptReader &r)
    {
        messages.load(r);
        bytes.load(r);
        waitMs.load(r);
    }
};

/**
 * A network interface: one transmitter draining a message queue at
 * link speed under the configured scheduler.
 */
class NetworkInterface
{
  public:
    /**
     * @param events     Simulation event queue.
     * @param bitsPerSec Link bandwidth.
     * @param scheduler  Transmit policy (non-null).
     * @param name       Label for logs.
     * @param perMessageOverhead Fixed per-message cost (framing,
     *                   protocol processing).
     */
    NetworkInterface(EventQueue &events, double bitsPerSec,
                     std::unique_ptr<NetScheduler> scheduler,
                     std::string name = "net0",
                     Time perMessageOverhead = 50 * kUs);

    /** Queue a message; transmission begins immediately if idle.
     *  @return the id assigned to the message. */
    std::uint64_t submit(NetMessage msg);

    /** Time on the wire for @p bytes (excluding queueing). */
    Time transmitTime(std::uint64_t bytes) const;

    bool busy() const { return busy_; }
    std::size_t queueDepth() const { return queue_.size(); }

    const SpuNetStats &spuStats(SpuId spu) const;
    std::uint64_t totalMessages() const { return total_.value(); }
    const std::string &name() const { return name_; }

    /** The transmit policy in use (checkpoint code reaches the fair
     *  policy's bandwidth tracker through this). */
    NetScheduler &scheduler() { return *scheduler_; }
    const NetScheduler &scheduler() const { return *scheduler_; }

    /** Serialise counters; only legal while idle with empty queue. */
    void save(CkptWriter &w) const;
    void load(CkptReader &r);

  private:
    void startNext();

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // the event queue is imaged by Simulation, not per device.
    EventQueue &events_;
    // piso-lint: allow(checkpoint-field-coverage) -- link speed is
    // machine configuration, identical after setup replay.
    double bitsPerSec_;
    // piso-lint: allow(checkpoint-field-coverage) -- policy object
    // recreated by setup replay; its tracker is imaged separately.
    std::unique_ptr<NetScheduler> scheduler_;
    // piso-lint: allow(checkpoint-field-coverage) -- log label, fixed
    // at construction (save reads it only for error text).
    std::string name_;
    // piso-lint: allow(checkpoint-field-coverage) -- per-message
    // overhead is machine configuration, fixed at construction.
    Time overhead_;

    // piso-lint: allow(checkpoint-field-coverage) -- save() throws
    // unless the queue is empty; nothing to image.
    std::deque<NetMessage> queue_;
    // piso-lint: allow(checkpoint-field-coverage) -- save() throws
    // unless idle; always false in any image.
    bool busy_ = false;
    std::uint64_t nextId_ = 1;
    Counter total_;
    mutable SpuTable<SpuNetStats> spuStats_;
};

} // namespace piso

#endif // PISO_MACHINE_NETWORK_HH
