#include "src/workload/oltp.hh"

#include "src/util/log.hh"
#include "src/workload/synthetic.hh"

namespace piso {

JobSpec
makeOltp(std::string name, const OltpConfig &cfg)
{
    if (cfg.servers < 1 || cfg.transactionsPerServer < 1)
        PISO_FATAL("oltp '", name, "' needs >=1 server and transaction");
    if (cfg.updateFraction < 0.0 || cfg.updateFraction > 1.0)
        PISO_FATAL("oltp '", name, "' update fraction out of [0,1]");

    JobSpec job;
    job.name = std::move(name);
    job.build = [cfg, jobName = job.name](Kernel &, WorkloadEnv &env) {
        const FileId table =
            env.fs.createFile(jobName + ".table", env.disk,
                              cfg.tableBytes);
        // The write-ahead log: appends walk it sequentially.
        const std::uint64_t logBytes =
            static_cast<std::uint64_t>(cfg.servers) *
            cfg.transactionsPerServer * cfg.logAppendBytes + 4096;
        const FileId log =
            env.fs.createFile(jobName + ".log", env.disk, logBytes);

        const std::uint64_t pageBytes = 4096;
        const std::uint64_t tablePages = cfg.tableBytes / pageBytes;
        std::uint64_t logOffset = 0;

        std::vector<ProcessSpec> procs;
        for (int s = 0; s < cfg.servers; ++s) {
            std::vector<Action> script;
            script.push_back(GrowMemAction{cfg.wsPages});
            for (int t = 0; t < cfg.transactionsPerServer; ++t) {
                const bool update =
                    env.rng.chance(cfg.updateFraction);
                if (cfg.indexLock >= 0) {
                    script.push_back(LockAction{cfg.indexLock, update,
                                                cfg.lockHold});
                }
                // Random table page read.
                const std::uint64_t page =
                    env.rng.uniformInt(tablePages);
                script.push_back(
                    ReadAction{table, page * pageBytes, pageBytes});
                // Transaction logic.
                const double f = env.rng.uniformRange(0.7, 1.3);
                script.push_back(ComputeAction{static_cast<Time>(
                    static_cast<double>(cfg.txnCpu) * f)});
                // Synchronous log append for updates.
                if (update) {
                    script.push_back(WriteAction{log, logOffset,
                                                 cfg.logAppendBytes,
                                                 true});
                    logOffset += cfg.logAppendBytes;
                }
            }
            ProcessSpec spec;
            spec.name = jobName + ".srv" + std::to_string(s);
            spec.behavior =
                std::make_unique<ScriptBehavior>(std::move(script));
            spec.touchInterval = 15 * kMs; // buffer pools have locality
            procs.push_back(std::move(spec));
        }
        return procs;
    };
    return job;
}

} // namespace piso
