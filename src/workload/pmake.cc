#include "src/workload/pmake.hh"

#include "src/util/log.hh"
#include "src/workload/synthetic.hh"

namespace piso {

JobSpec
makePmake(std::string name, const PmakeConfig &cfg)
{
    if (cfg.parallelism < 1 || cfg.filesPerWorker < 1)
        PISO_FATAL("pmake '", name, "' needs >=1 worker and >=1 file");

    JobSpec job;
    job.name = std::move(name);
    job.build = [cfg, jobName = job.name](Kernel &,
                                          WorkloadEnv &env) {
        // One shared metadata block per job: every worker rewrites it,
        // so the disk sees repeated writes to a single sector.
        const FileId meta = env.fs.createFile(jobName + ".meta", env.disk,
                                              512);

        std::vector<ProcessSpec> procs;
        for (int w = 0; w < cfg.parallelism; ++w) {
            std::vector<Action> script;
            script.push_back(GrowMemAction{cfg.workerWsPages});

            for (int i = 0; i < cfg.filesPerWorker; ++i) {
                const std::string stem = jobName + ".w" +
                                         std::to_string(w) + ".f" +
                                         std::to_string(i);
                const FileId src =
                    env.fs.createFile(stem + ".c", env.disk, cfg.srcBytes,
                                      FilePlacement::Scattered);
                const FileId obj =
                    env.fs.createFile(stem + ".o", env.disk, cfg.objBytes,
                                      FilePlacement::Scattered);

                if (cfg.inodeLock >= 0) {
                    script.push_back(
                        LockAction{cfg.inodeLock, false, cfg.lockHold});
                }
                script.push_back(ReadAction{src, 0, cfg.srcBytes});

                const double f = env.rng.uniformRange(0.8, 1.2);
                script.push_back(ComputeAction{static_cast<Time>(
                    static_cast<double>(cfg.compileCpu) * f)});

                script.push_back(WriteAction{obj, 0, cfg.objBytes, false});
                if (cfg.inodeLock >= 0) {
                    script.push_back(
                        LockAction{cfg.inodeLock, true, cfg.lockHold});
                }
                script.push_back(
                    WriteAction{meta, 0, 512, cfg.metadataSync});
            }

            ProcessSpec spec;
            spec.name = jobName + ".cc" + std::to_string(w);
            spec.behavior =
                std::make_unique<ScriptBehavior>(std::move(script));
            spec.touchInterval = cfg.touchInterval;
            procs.push_back(std::move(spec));
        }
        return procs;
    };
    return job;
}

} // namespace piso
