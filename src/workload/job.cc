#include "src/workload/job.hh"

#include "src/util/log.hh"

namespace piso {

bool
Job::processExited(Time now)
{
    if (remaining_ <= 0)
        PISO_PANIC("job '", name_, "' has no processes left to exit");
    started_ = true;
    if (--remaining_ == 0) {
        endTime_ = now;
        return true;
    }
    return false;
}

} // namespace piso
