#include "src/workload/filecopy.hh"

#include "src/util/log.hh"
#include "src/workload/synthetic.hh"

namespace piso {

JobSpec
makeFileCopy(std::string name, const FileCopyConfig &cfg)
{
    if (cfg.bytes == 0 || cfg.chunkBytes == 0)
        PISO_FATAL("copy '", name, "' needs non-zero sizes");

    JobSpec job;
    job.name = std::move(name);
    job.build = [cfg, jobName = job.name](Kernel &, WorkloadEnv &env) {
        const FileId src =
            env.fs.createFile(jobName + ".src", env.disk, cfg.bytes);
        const FileId dst =
            env.fs.createFile(jobName + ".dst", env.disk, cfg.bytes);

        std::vector<Action> script;
        script.push_back(GrowMemAction{cfg.wsPages});
        for (std::uint64_t off = 0; off < cfg.bytes;
             off += cfg.chunkBytes) {
            const std::uint64_t n =
                std::min<std::uint64_t>(cfg.chunkBytes, cfg.bytes - off);
            script.push_back(ReadAction{src, off, n});
            if (cfg.cpuPerChunk > 0)
                script.push_back(ComputeAction{cfg.cpuPerChunk});
            script.push_back(WriteAction{dst, off, n, false});
        }

        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            jobName,
            std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    return job;
}

} // namespace piso
