#ifndef PISO_WORKLOAD_SCIENTIFIC_HH
#define PISO_WORKLOAD_SCIENTIFIC_HH

/**
 * @file
 * Compute-intensive scientific/engineering workloads of the CPU
 * isolation experiment (Section 4.3): Ocean (a barrier-synchronised
 * parallel SPLASH-2 code) and the single-process Flashlite and VCS
 * simulators.
 */

#include <string>

#include "src/workload/job.hh"
#include "src/workload/synthetic.hh"

namespace piso {

/** Parameters of a barrier-synchronised parallel job. */
struct OceanConfig
{
    int processes = 4;

    /** Compute phases separated by all-process barriers. */
    int iterations = 400;

    /** Mean compute per phase per process (jittered +-10%: slight
     *  imbalance is what makes descheduling hurt). */
    Time grain = 20 * kMs;

    /** Working set per process. */
    std::uint64_t wsPagesPerProc = 512;

    double jitter = 0.10;

    /** SPLASH-2 style user-level spin barriers (waiters burn CPU and
     *  keep their processors). False: blocking kernel barriers. */
    bool spinBarriers = true;
};

/**
 * Build an Ocean-style job: @ref OceanConfig::processes processes,
 * each alternating compute and a barrier. With fewer CPUs than
 * processes the whole gang runs at the pace of its slowest member —
 * exactly why Ocean suffers interference under the SMP scheme.
 */
JobSpec makeOcean(std::string name, const OceanConfig &cfg = {});

/** A Flashlite-style run: one long compute-bound process. */
JobSpec makeFlashlite(std::string name, Time totalCpu = 20 * kSec,
                      std::uint64_t wsPages = 512);

/** A VCS-style run: one long compute-bound process. */
JobSpec makeVcs(std::string name, Time totalCpu = 20 * kSec,
                std::uint64_t wsPages = 768);

} // namespace piso

#endif // PISO_WORKLOAD_SCIENTIFIC_HH
