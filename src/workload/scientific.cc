#include "src/workload/scientific.hh"

#include "src/os/kernel.hh"
#include "src/util/log.hh"

namespace piso {

JobSpec
makeOcean(std::string name, const OceanConfig &cfg)
{
    if (cfg.processes < 1 || cfg.iterations < 1)
        PISO_FATAL("ocean '", name, "' needs >=1 process and iteration");

    JobSpec job;
    job.name = std::move(name);
    job.build = [cfg, jobName = job.name](Kernel &kernel,
                                          WorkloadEnv &env) {
        const int barrier = kernel.createBarrier(cfg.processes);

        std::vector<ProcessSpec> procs;
        for (int r = 0; r < cfg.processes; ++r) {
            std::vector<Action> script;
            script.push_back(GrowMemAction{cfg.wsPagesPerProc});
            for (int i = 0; i < cfg.iterations; ++i) {
                const double f = env.rng.uniformRange(1.0 - cfg.jitter,
                                                      1.0 + cfg.jitter);
                script.push_back(ComputeAction{static_cast<Time>(
                    static_cast<double>(cfg.grain) * f)});
                script.push_back(
                    BarrierAction{barrier, cfg.spinBarriers});
            }
            procs.push_back(ProcessSpec{
                jobName + ".r" + std::to_string(r),
                std::make_unique<ScriptBehavior>(std::move(script))});
        }
        return procs;
    };
    return job;
}

JobSpec
makeFlashlite(std::string name, Time totalCpu, std::uint64_t wsPages)
{
    ComputeSpec spec;
    spec.totalCpu = totalCpu;
    spec.wsPages = wsPages;
    spec.chunk = 50 * kMs;
    return makeComputeJob(std::move(name), spec);
}

JobSpec
makeVcs(std::string name, Time totalCpu, std::uint64_t wsPages)
{
    ComputeSpec spec;
    spec.totalCpu = totalCpu;
    spec.wsPages = wsPages;
    spec.chunk = 80 * kMs;
    return makeComputeJob(std::move(name), spec);
}

} // namespace piso
