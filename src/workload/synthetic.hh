#ifndef PISO_WORKLOAD_SYNTHETIC_HH
#define PISO_WORKLOAD_SYNTHETIC_HH

/**
 * @file
 * Generic behaviours: scripted action sequences and simple synthetic
 * compute/memory patterns. Used by tests and as building blocks for
 * the paper workloads.
 */

#include <vector>

#include "src/os/behavior.hh"
#include "src/util/error.hh"
#include "src/workload/job.hh"

namespace piso {

/**
 * Plays back a fixed list of actions, then exits. The workhorse for
 * unit tests and for fully-unrolled workload scripts.
 */
class ScriptBehavior : public Behavior
{
  public:
    explicit ScriptBehavior(std::vector<Action> script)
        : script_(std::move(script))
    {
    }

    Action next(Process &, const BehaviorContext &) override
    {
        if (index_ >= script_.size())
            return ExitAction{};
        return script_[index_++];
    }

    std::size_t remaining() const { return script_.size() - index_; }

    void save(CkptWriter &w) const override { w.u64(index_); }

    void
    load(CkptReader &r) override
    {
        index_ = r.u64();
        if (index_ > script_.size())
            throw ConfigError("checkpoint image rejected: script "
                              "cursor beyond script end");
    }

  private:
    // piso-lint: allow(checkpoint-field-coverage) -- the script is
    // configuration replayed by setup; only the cursor is imaged.
    std::vector<Action> script_;
    std::size_t index_ = 0;
};

/** Parameters of a plain compute-bound process. */
struct ComputeSpec
{
    Time totalCpu = kSec;          //!< total CPU work
    Time chunk = 100 * kMs;        //!< compute emitted per action
    std::uint64_t wsPages = 256;   //!< working-set size
    double jitter = 0.05;          //!< +- fraction applied per chunk
};

/**
 * A single compute-bound process (models VCS / Flashlite style
 * engineering jobs: CPU-only after start-up).
 */
class ComputeBehavior : public Behavior
{
  public:
    explicit ComputeBehavior(const ComputeSpec &spec) : spec_(spec) {}

    Action next(Process &self, const BehaviorContext &ctx) override;

    void
    save(CkptWriter &w) const override
    {
        w.time(done_);
        w.boolean(grown_);
    }

    void
    load(CkptReader &r) override
    {
        done_ = r.time();
        grown_ = r.boolean();
    }

  private:
    // piso-lint: allow(checkpoint-field-coverage) -- behaviour
    // parameters, identical after deterministic setup replay.
    ComputeSpec spec_;
    Time done_ = 0;
    bool grown_ = false;
};

/** Single-process compute job (e.g. one VCS or Flashlite run). */
JobSpec makeComputeJob(std::string name, const ComputeSpec &spec);

/** Job playing one scripted process. */
JobSpec makeScriptJob(std::string name, std::vector<Action> script,
                      Time startAt = 0);

} // namespace piso

#endif // PISO_WORKLOAD_SYNTHETIC_HH
