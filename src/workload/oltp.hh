#ifndef PISO_WORKLOAD_OLTP_HH
#define PISO_WORKLOAD_OLTP_HH

/**
 * @file
 * An OLTP-style database server workload.
 *
 * The paper motivates performance isolation with general-purpose
 * compute servers running "unrelated jobs belonging to various
 * groupings". A transaction-processing service is the classic such
 * tenant: several server processes execute short transactions — a
 * shared-mode index lookup, a random table-page read, a little
 * compute, and (for update transactions) an exclusive-mode log append
 * written synchronously. It exercises every resource dimension at
 * once: CPU bursts, buffer-cache-unfriendly random reads, sequential
 * synchronous log writes, and kernel-lock contention.
 */

#include <string>

#include "src/workload/job.hh"

namespace piso {

/** Parameters of one database job. */
struct OltpConfig
{
    /** Concurrent server processes. */
    int servers = 4;

    /** Transactions executed per server. */
    int transactionsPerServer = 100;

    /** Size of the table file (random page reads land in it). */
    std::uint64_t tableBytes = 64 * 1024 * 1024;

    /** CPU burned per transaction (jittered +-30%). */
    Time txnCpu = 2 * kMs;

    /** Fraction of transactions that append to the log. */
    double updateFraction = 0.3;

    /** Bytes appended to the log per update (written synchronously). */
    std::uint64_t logAppendBytes = 2048;

    /** Server process working set (buffer pool share). */
    std::uint64_t wsPages = 400;

    /** Index lock hold per transaction (shared mode; exclusive for
     *  updates). Created by the caller, or -1 to skip locking. */
    int indexLock = -1;
    Time lockHold = 50 * kUs;
};

/** Build an OLTP JobSpec; the table and log are laid out on the
 *  SPU's home disk at build time. */
JobSpec makeOltp(std::string name, const OltpConfig &cfg = {});

} // namespace piso

#endif // PISO_WORKLOAD_OLTP_HH
