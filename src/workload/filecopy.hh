#ifndef PISO_WORKLOAD_FILECOPY_HH
#define PISO_WORKLOAD_FILECOPY_HH

/**
 * @file
 * The file-copy workloads of the disk experiments (Section 4.5): a
 * single process streaming a contiguous source file into a new
 * destination file. Reads enjoy kernel read-ahead (multiple
 * outstanding requests just ahead of the head); writes dirty the
 * buffer cache and reach the disk as batched delayed writes — the
 * exact pattern that lets a 20 MB copy monopolise a C-SCAN disk.
 */

#include <string>

#include "src/workload/job.hh"

namespace piso {

/** Parameters of a file-copy job. */
struct FileCopyConfig
{
    /** Size of the file to copy (paper: 20 MB, 5 MB, 500 KB). */
    std::uint64_t bytes = 20 * 1024 * 1024;

    /** Application read/write chunk. */
    std::uint64_t chunkBytes = 32 * 1024;

    /** Per-chunk CPU (buffer shuffling). */
    Time cpuPerChunk = 200 * kUs;

    /** Copy working set (I/O buffers). */
    std::uint64_t wsPages = 64;
};

/** Build a copy job; source and destination are laid out contiguously
 *  on the SPU's home disk at build time. */
JobSpec makeFileCopy(std::string name, const FileCopyConfig &cfg = {});

} // namespace piso

#endif // PISO_WORKLOAD_FILECOPY_HH
