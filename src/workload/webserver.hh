#ifndef PISO_WORKLOAD_WEBSERVER_HH
#define PISO_WORKLOAD_WEBSERVER_HH

/**
 * @file
 * A static web-server workload: worker processes serve requests by
 * reading documents (a hot set dominates, so the buffer cache
 * matters) and transmitting responses on the machine's network
 * interface. Exercises the client-server side of the paper's
 * motivation and the network-bandwidth extension end to end.
 */

#include <string>

#include "src/workload/job.hh"

namespace piso {

/** Parameters of one web-server job. */
struct WebServerConfig
{
    /** Concurrent worker processes. */
    int workers = 4;

    /** Requests served per worker. */
    int requestsPerWorker = 200;

    /** Number of documents in the docroot. */
    int documents = 200;

    /** Size of each document. */
    std::uint64_t docBytes = 16 * 1024;

    /** Fraction of requests hitting the hot 10% of documents. */
    double hotFraction = 0.9;

    /** CPU per request (parsing, headers). */
    Time requestCpu = 500 * kUs;

    /** Response transmitted on the network (0 with no NIC). */
    std::uint64_t responseBytes = 16 * 1024;

    /** Worker working set. */
    std::uint64_t wsPages = 128;
};

/** Build a web-server JobSpec; the docroot is laid out scattered on
 *  the SPU's home disk at build time. */
JobSpec makeWebServer(std::string name, const WebServerConfig &cfg = {});

} // namespace piso

#endif // PISO_WORKLOAD_WEBSERVER_HH
