#include "src/workload/webserver.hh"

#include "src/util/log.hh"
#include "src/workload/synthetic.hh"

namespace piso {

JobSpec
makeWebServer(std::string name, const WebServerConfig &cfg)
{
    if (cfg.workers < 1 || cfg.requestsPerWorker < 1)
        PISO_FATAL("webserver '", name, "' needs >=1 worker/request");
    if (cfg.documents < 1)
        PISO_FATAL("webserver '", name, "' needs documents");

    JobSpec job;
    job.name = std::move(name);
    job.build = [cfg, jobName = job.name](Kernel &, WorkloadEnv &env) {
        std::vector<FileId> docs;
        docs.reserve(static_cast<std::size_t>(cfg.documents));
        for (int d = 0; d < cfg.documents; ++d) {
            docs.push_back(env.fs.createFile(
                jobName + ".doc" + std::to_string(d), env.disk,
                cfg.docBytes, FilePlacement::Scattered));
        }
        const int hotCount = std::max(1, cfg.documents / 10);

        std::vector<ProcessSpec> procs;
        for (int w = 0; w < cfg.workers; ++w) {
            std::vector<Action> script;
            script.push_back(GrowMemAction{cfg.wsPages});
            for (int r = 0; r < cfg.requestsPerWorker; ++r) {
                // Pick a document: hot set with probability
                // hotFraction, anywhere otherwise.
                const bool hot = env.rng.chance(cfg.hotFraction);
                const std::uint64_t idx =
                    hot ? env.rng.uniformInt(
                              static_cast<std::uint64_t>(hotCount))
                        : env.rng.uniformInt(static_cast<std::uint64_t>(
                              cfg.documents));
                script.push_back(ReadAction{
                    docs[static_cast<std::size_t>(idx)], 0,
                    cfg.docBytes});
                const double f = env.rng.uniformRange(0.7, 1.3);
                script.push_back(ComputeAction{static_cast<Time>(
                    static_cast<double>(cfg.requestCpu) * f)});
                if (cfg.responseBytes > 0)
                    script.push_back(SendAction{cfg.responseBytes});
            }
            ProcessSpec spec;
            spec.name = jobName + ".w" + std::to_string(w);
            spec.behavior =
                std::make_unique<ScriptBehavior>(std::move(script));
            procs.push_back(std::move(spec));
        }
        return procs;
    };
    return job;
}

} // namespace piso
