#ifndef PISO_WORKLOAD_JOB_HH
#define PISO_WORKLOAD_JOB_HH

/**
 * @file
 * Job: a named group of processes whose collective response time is
 * what the paper's figures report.
 */

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/os/behavior.hh"
#include "src/os/filesystem.hh"
#include "src/sim/ids.hh"
#include "src/sim/random.hh"
#include "src/util/time.hh"

namespace piso {

class Kernel;

/** Environment handed to a JobSpec build function. */
struct WorkloadEnv
{
    FileSystem &fs;     //!< for laying out the job's files
    Rng rng;            //!< private stream for layout/jitter choices
    DiskId disk = 0;    //!< the owning SPU's home disk
    std::uint32_t pageBytes = 4096;
};

/** One process to create for a job. */
struct ProcessSpec
{
    std::string name;
    std::unique_ptr<Behavior> behavior;

    /** Override for Process::touchInterval (0 = keep the default).
     *  Larger values model better memory locality: fewer refaults
     *  per second of compute under a given residency deficit. */
    Time touchInterval = 0;

    /** Override for Process::dirtyFraction (< 0 = keep default). */
    double dirtyFraction = -1.0;
};

/**
 * A deferred job description: the build function runs at simulation
 * setup (it may create files, barriers, and locks) and returns the
 * job's processes.
 */
struct JobSpec
{
    std::string name;
    Time startAt = 0;
    std::function<std::vector<ProcessSpec>(Kernel &, WorkloadEnv &)> build;
};

/** Run-time tracking of one job. */
class Job
{
  public:
    Job(JobId id, std::string name, SpuId spu, Time startAt)
        : id_(id), name_(std::move(name)), spu_(spu), startAt_(startAt)
    {
    }

    JobId id() const { return id_; }
    const std::string &name() const { return name_; }
    SpuId spu() const { return spu_; }
    Time startAt() const { return startAt_; }

    /** Register one more constituent process. */
    void addProcess() { ++remaining_; }

    /** One constituent exited at @p now. @return true when this
     *  completes the job. */
    bool processExited(Time now);

    /** A constituent died on a permanently failed I/O. */
    void markFailed() { failed_ = true; }

    bool completed() const { return remaining_ == 0 && started_; }

    /** True when any constituent was killed by an I/O failure; the
     *  job still "completes" (all processes exit) but its result is
     *  reported failed. */
    bool failed() const { return failed_; }

    Time endTime() const { return endTime_; }

    /** Wall-clock from job start to last process exit. */
    Time response() const
    {
        return completed() ? endTime_ - startAt_ : 0;
    }

    /** @name Checkpoint */
    /// @{
    void
    save(CkptWriter &w) const
    {
        w.i64(remaining_);
        w.boolean(started_);
        w.boolean(failed_);
        w.time(endTime_);
    }

    void
    load(CkptReader &r)
    {
        remaining_ = static_cast<int>(r.i64());
        started_ = r.boolean();
        failed_ = r.boolean();
        endTime_ = r.time();
    }
    /// @}

  private:
    // piso-lint: allow(checkpoint-field-coverage) -- identity assigned
    // by setup replay, identical on every run of the config.
    JobId id_;
    // piso-lint: allow(checkpoint-field-coverage) -- report label,
    // fixed by configuration; identical after setup replay.
    std::string name_;
    // piso-lint: allow(checkpoint-field-coverage) -- placement is
    // configuration, identical after deterministic setup replay.
    SpuId spu_;
    // piso-lint: allow(checkpoint-field-coverage) -- arrival time is
    // configuration, identical after deterministic setup replay.
    Time startAt_;
    int remaining_ = 0;
    bool started_ = false;
    bool failed_ = false;
    Time endTime_ = 0;
};

} // namespace piso

#endif // PISO_WORKLOAD_JOB_HH
