#include "src/workload/synthetic.hh"

#include "src/os/process.hh"

namespace piso {

Action
ComputeBehavior::next(Process &, const BehaviorContext &ctx)
{
    if (!grown_) {
        grown_ = true;
        if (spec_.wsPages > 0)
            return GrowMemAction{spec_.wsPages};
    }
    if (done_ >= spec_.totalCpu)
        return ExitAction{};

    Time chunk = std::min(spec_.chunk, spec_.totalCpu - done_);
    if (spec_.jitter > 0.0) {
        const double f =
            ctx.rng.uniformRange(1.0 - spec_.jitter, 1.0 + spec_.jitter);
        chunk = static_cast<Time>(static_cast<double>(chunk) * f);
        chunk = std::max<Time>(chunk, kUs);
    }
    done_ += chunk;
    return ComputeAction{chunk};
}

JobSpec
makeComputeJob(std::string name, const ComputeSpec &spec)
{
    JobSpec job;
    job.name = std::move(name);
    job.build = [spec, name = job.name](Kernel &, WorkloadEnv &) {
        std::vector<ProcessSpec> procs;
        procs.push_back(
            ProcessSpec{name, std::make_unique<ComputeBehavior>(spec)});
        return procs;
    };
    return job;
}

JobSpec
makeScriptJob(std::string name, std::vector<Action> script, Time startAt)
{
    JobSpec job;
    job.name = std::move(name);
    job.startAt = startAt;
    job.build = [script = std::move(script),
                 name = job.name](Kernel &, WorkloadEnv &) mutable {
        std::vector<ProcessSpec> procs;
        procs.push_back(ProcessSpec{
            name, std::make_unique<ScriptBehavior>(std::move(script))});
        return procs;
    };
    return job;
}

} // namespace piso
