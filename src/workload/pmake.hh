#ifndef PISO_WORKLOAD_PMAKE_HH
#define PISO_WORKLOAD_PMAKE_HH

/**
 * @file
 * The pmake workload model.
 *
 * A pmake job is a parallel make: several concurrent compile workers,
 * each compiling a list of source files. Per file a worker reads the
 * (scattered) source, burns compile CPU, writes the object file, and
 * synchronously rewrites one shared metadata sector — reproducing the
 * paper's observed pattern of ~300 non-contiguous disk requests per
 * pmake with "many repeated writes of meta-data to a single sector"
 * (Section 4.5). Workers can optionally contend on a shared
 * inode-lock (Section 3.4).
 */

#include <string>

#include "src/workload/job.hh"

namespace piso {

/** Parameters of one pmake job. */
struct PmakeConfig
{
    /** Concurrent compile workers ("two parallel compiles" in the
     *  Pmake8 workload, four in the memory-isolation workload). */
    int parallelism = 2;

    /** Source files compiled per worker. */
    int filesPerWorker = 12;

    std::uint64_t srcBytes = 16 * 1024;
    std::uint64_t objBytes = 8 * 1024;

    /** Mean compile CPU per file (uniformly jittered +-20%). */
    Time compileCpu = 120 * kMs;

    /** Worker working-set pages (compiler heap). */
    std::uint64_t workerWsPages = 600;

    /** Synchronous metadata write after each object file. */
    bool metadataSync = true;

    /** Kernel lock contended around metadata operations (-1: none).
     *  Created by the caller via Kernel::createLock(). */
    int inodeLock = -1;

    /** Hold time of the inode lock per metadata operation. */
    Time lockHold = 100 * kUs;

    /** Memory locality of the compile workers (mean compute between
     *  page touches; see Process::touchInterval). */
    Time touchInterval = 8 * kMs;
};

/** Build a pmake JobSpec. Files are laid out on the SPU's home disk
 *  at build time (sources scattered, objects near the frontier). */
JobSpec makePmake(std::string name, const PmakeConfig &cfg = {});

} // namespace piso

#endif // PISO_WORKLOAD_PMAKE_HH
