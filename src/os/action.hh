#ifndef PISO_OS_ACTION_HH
#define PISO_OS_ACTION_HH

/**
 * @file
 * The vocabulary of things a simulated process can do.
 *
 * A process's Behavior yields a stream of Actions; the Kernel interprets
 * them. This is the boundary between workload models (what a pmake or a
 * file copy *does*) and the OS substrate (what that costs and when it
 * blocks).
 */

#include <cstdint>
#include <variant>

#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/** Burn CPU for @ref duration (preemptible; subject to page faults). */
struct ComputeAction
{
    Time duration;
};

/** Read @ref bytes from @ref file at @ref offset through the buffer
 *  cache; blocks until all demanded blocks are resident. */
struct ReadAction
{
    FileId file;
    std::uint64_t offset;
    std::uint64_t bytes;
};

/**
 * Write @ref bytes to @ref file at @ref offset. Delayed writes dirty
 * buffer-cache blocks and return quickly; @ref sync forces the data to
 * disk before the action completes (used for metadata writes).
 */
struct WriteAction
{
    FileId file;
    std::uint64_t offset;
    std::uint64_t bytes;
    bool sync = false;
};

/** Raise the process working set by @ref pages (touched on demand). */
struct GrowMemAction
{
    std::uint64_t pages;
};

/** Release @ref pages resident pages and shrink the working set. */
struct ShrinkMemAction
{
    std::uint64_t pages;
};

/** Block without consuming CPU for @ref duration. */
struct SleepAction
{
    Time duration;
};

/**
 * Synchronise with the other members of barrier @ref barrier; the
 * barrier's width is configured when it is created in the Kernel.
 * With @ref spin set, waiting burns CPU instead of blocking (a
 * user-level spin barrier, as in SPLASH-2 codes): the waiter keeps
 * its processor, so no idle CPU is exposed for lending — but under
 * CPU oversubscription the spinner can be preempted, stretching every
 * barrier round (the convoy effect that hurts Ocean under SMP).
 */
struct BarrierAction
{
    int barrier;
    bool spin = false;
};

/**
 * Acquire kernel lock @ref lock (shared or exclusive), hold it for
 * @ref hold of compute time, then release. Models the Section 3.4
 * inode-lock / page-insert-lock contention.
 */
struct LockAction
{
    int lock;
    bool exclusive;
    Time hold;
};

/**
 * Transmit @ref bytes on the machine's network interface; blocks
 * until the message has left the wire (a synchronous send). Requires
 * a configured network (SystemConfig::networkBitsPerSec).
 */
struct SendAction
{
    std::uint64_t bytes;
};

/** Terminate the process. */
struct ExitAction
{
};

/** Any single step of a process's life. */
using Action = std::variant<ComputeAction, ReadAction, WriteAction,
                            GrowMemAction, ShrinkMemAction, SleepAction,
                            BarrierAction, LockAction, SendAction,
                            ExitAction>;

} // namespace piso

#endif // PISO_OS_ACTION_HH
