#ifndef PISO_OS_CSCAN_HH
#define PISO_OS_CSCAN_HH

/**
 * @file
 * The C-SCAN disk scheduler — IRIX 5.3's head-position-only policy,
 * called "Pos" in the paper's disk experiments (Section 3.3).
 *
 * Requests are serviced in ascending sector order as the head sweeps
 * from the first to the last sector; past the last queued request the
 * head returns to the beginning. The requesting process (and SPU) play
 * no part, which is exactly the lack of isolation the paper attacks:
 * a large contiguous stream parks the head and locks everyone else
 * out.
 */

#include "src/machine/disk.hh"

namespace piso {

/** Head-position-only (C-SCAN) scheduling. */
class CScanScheduler : public DiskScheduler
{
  public:
    std::size_t pick(const std::deque<DiskRequest> &queue,
                     std::uint64_t headSector, Time now) override;

    /**
     * Shared helper: index of the C-SCAN choice among @p queue
     * restricted to indices for which @p eligible returns true (used
     * by the PIso policy to apply C-SCAN over the fair subset).
     * @return queue.size() if no eligible request exists.
     */
    static std::size_t
    pickAmong(const std::deque<DiskRequest> &queue, std::uint64_t headSector,
              const std::function<bool(const DiskRequest &)> &eligible);
};

} // namespace piso

#endif // PISO_OS_CSCAN_HH
