#ifndef PISO_OS_VM_HH
#define PISO_OS_VM_HH

/**
 * @file
 * Per-SPU physical-memory accounting: the entitled / allowed / used
 * triple of Section 2.3.
 *
 * This layer is pure bookkeeping — which SPU holds how many frames
 * against which limits, and who should lose a frame when someone needs
 * one. The level accounting itself lives in a ResourceLedger
 * (src/core/ledger.hh); this class adds the frame pool, the victim
 * policies, and the pressure signal. The Kernel performs the actual
 * evictions and I/O; the MemorySharingPolicy (src/core) moves the
 * *allowed* levels around.
 */

#include <cstdint>
#include <vector>

#include "src/core/ledger.hh"
#include "src/machine/memory.hh"
#include "src/sim/ids.hh"
#include "src/sim/random.hh"

namespace piso {

/** The three per-resource levels of the SPU abstraction, counted in
 *  page frames. */
using MemLevels = ResourceLevels;

/** Per-SPU frame accounting against entitled/allowed/used levels. */
class VirtualMemory
{
  public:
    explicit VirtualMemory(PhysicalMemory &phys);

    /** Make @p spu known with zero levels (idempotent). */
    void registerSpu(SpuId spu);

    /** @name Level management */
    /// @{
    void setEntitled(SpuId spu, std::uint64_t pages);
    void setAllowed(SpuId spu, std::uint64_t pages);
    const MemLevels &levels(SpuId spu) const;
    /// @}

    /** Frames kept free to hide revocation cost (Reserve Threshold,
     *  Section 3.2). Consulted by the sharing policy and the pageout
     *  daemon, not enforced on individual allocations. */
    void
    setReservePages(std::uint64_t pages)
    {
        reservePages_ = pages;
        ++version_;
    }
    std::uint64_t reservePages() const { return reservePages_; }

    /**
     * Mutation counter: bumped by every state change a sharing-policy
     * pass can observe (registrations, level moves, charges, pressure
     * notes, reserve changes). The MemorySharingPolicy skips a
     * periodic pass in O(1) when this and the SPU-registry version
     * are unchanged since its last pass. Never serialised: both sides
     * of a checkpoint agree on "unknown", which only costs one
     * (idempotent) recompute after restore.
     */
    std::uint64_t version() const { return version_; }

    std::uint64_t totalPages() const { return phys_.totalPages(); }
    std::uint64_t freePages() const { return phys_.freePages(); }
    std::uint32_t pageBytes() const { return phys_.pageBytes(); }

    /**
     * Try to take one free frame charged to @p spu. Fails (false) when
     * the SPU is at its allowed level or no frame is free; the caller
     * then reclaims via victimSpu()/transferCharge().
     */
    bool tryCharge(SpuId spu);

    /** Return one of @p spu's frames to the free pool. */
    void uncharge(SpuId spu);

    /** Move one frame's charge from @p from to @p to (reclaim: the
     *  frame is reused without passing through the free pool). */
    void transferCharge(SpuId from, SpuId to);

    /** True when used >= allowed. */
    bool atLimit(SpuId spu) const;

    /** Frames @p spu holds beyond its allowed level (0 if within). */
    std::uint64_t overAllowed(SpuId spu) const;

    /**
     * Choose the SPU that should lose a frame so @p requester can have
     * one. If the requester is at its own allowed level, isolation
     * demands it reclaims from itself. Otherwise (global exhaustion,
     * e.g. the SMP scheme) pick the most-over-allowed SPU, falling back
     * to the largest non-kernel user.
     * @return kNoSpu only if no SPU holds any reclaimable frame.
     */
    SpuId victimSpu(SpuId requester) const;

    /**
     * Global-replacement victim: a non-kernel SPU picked with
     * probability proportional to its used pages (approximates global
     * LRU, where every SPU loses pages in proportion to its
     * footprint — the SMP scheme's defining non-isolation).
     * @return kNoSpu when no non-kernel SPU holds pages.
     */
    SpuId weightedVictim(Rng &rng) const;

    /** @name Memory-pressure signal for the sharing policy */
    /// @{
    /** Record that @p spu had to reclaim from itself (hit its cap). */
    void notePressure(SpuId spu);

    /** Read and clear @p spu's pressure count. */
    std::uint64_t takePressure(SpuId spu);

    /** Read without clearing. */
    std::uint64_t pressure(SpuId spu) const;
    /// @}

    /** All registered SPU ids, ascending. */
    std::vector<SpuId> spus() const;

    /** @name Checkpoint */
    /// @{
    void
    save(CkptWriter &w) const
    {
        ledger_.save(w);
        pressure_.saveTable(w,
                            [](CkptWriter &wr, const std::uint64_t &n) {
                                wr.u64(n);
                            });
        w.u64(reservePages_);
    }

    void
    load(CkptReader &r)
    {
        ledger_.load(r);
        pressure_.loadTable(r, [](CkptReader &rd, std::uint64_t &n) {
            n = rd.u64();
        });
        reservePages_ = r.u64();
        // Restored state replaced everything a policy pass observes;
        // invalidate any version captured during setup replay.
        ++version_;
    }
    /// @}

  private:
    /** Fatal-checked pressure-counter access. */
    std::uint64_t &pressureEntry(SpuId spu);

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // PhysicalMemory is imaged by Simulation, not through the VM.
    PhysicalMemory &phys_;
    ResourceLedger ledger_{"memory"};
    SpuTable<std::uint64_t> pressure_;
    std::uint64_t reservePages_ = 0;
    // piso-lint: allow(checkpoint-field-coverage) -- monotonic change
    // counter; load bumps it rather than restoring it.
    std::uint64_t version_ = 0;
};

} // namespace piso

#endif // PISO_OS_VM_HH
