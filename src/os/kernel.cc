#include "src/os/kernel.hh"

#include <algorithm>

#include "src/util/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"

namespace piso {

Kernel::Kernel(EventQueue &events, VirtualMemory &vm, BufferCache &cache,
               FileSystem &fs, CpuScheduler &sched,
               std::vector<DiskDevice *> disks, Rng rng,
               KernelConfig config)
    : events_(events), vm_(vm), cache_(cache), fs_(fs), sched_(sched),
      disks_(std::move(disks)), rng_(rng), config_(config)
{
    if (disks_.empty())
        PISO_FATAL("kernel needs at least one disk");
    sched_.setClient(this);
    vm_.registerSpu(kKernelSpu);
    vm_.registerSpu(kSharedSpu);
}

void
Kernel::setSpuDisk(SpuId spu, DiskId disk)
{
    if (disk < 0 || static_cast<std::size_t>(disk) >= disks_.size())
        PISO_FATAL("SPU ", spu, " assigned to unknown disk ", disk);
    spuDisk_[spu] = disk;
}

void
Kernel::start()
{
    if (started_)
        PISO_FATAL("kernel started twice");
    started_ = true;
    sched_.start();
    events_.scheduleAfter(config_.bdflushPeriod,
                          [this] { bdflushPeriodicHelper(); }, "bdflush");
    events_.scheduleAfter(config_.pageoutPeriod,
                          [this] { pageoutDaemonHelper(); }, "pageout");
}

// --------------------------------------------------------------------
// Process management
// --------------------------------------------------------------------

Process *
Kernel::createProcess(SpuId spu, JobId job, std::string name,
                      std::unique_ptr<Behavior> behavior, Time startAt)
{
    vm_.registerSpu(spu);
    auto proc = std::make_unique<Process>(nextPid_++, spu, job,
                                          std::move(name),
                                          std::move(behavior), rng_.fork());
    Process *p = proc.get();
    processes_.push_back(std::move(proc));
    spuProcs_[spu].push_back(p);
    ++live_;

    p->startTime = startAt;
    sched_.processCreated(p);
    const Time when = std::max(startAt, events_.now());
    p->startEvent = events_.schedule(
        when,
        [this, p] {
            p->startEvent = kNoEvent;
            sched_.processReady(p);
        },
        "procStart");
    return p;
}

Process *
Kernel::process(Pid pid) const
{
    for (const auto &p : processes_) {
        if (p->pid() == pid)
            return p.get();
    }
    return nullptr;
}

int
Kernel::createBarrier(int width)
{
    if (width < 1)
        PISO_FATAL("barrier width must be >= 1, got ", width);
    barriers_.push_back(Barrier{width, {}});
    return static_cast<int>(barriers_.size()) - 1;
}

int
Kernel::createLock(bool readersWriter)
{
    return locks_.create(readersWriter);
}

bool
Kernel::ioIdle() const
{
    for (const DiskDevice *d : disks_) {
        if (d->busy() || d->queueDepth() > 0)
            return false;
    }
    return cache_.dirtyCount() == 0;
}

void
Kernel::blockProcess(Process &p)
{
    sched_.processBlocked(&p);
}

void
Kernel::wakeProcess(Process &p)
{
    if (p.state() == ProcState::Blocked)
        sched_.processReady(&p);
}

// --------------------------------------------------------------------
// SchedClient: segment execution
// --------------------------------------------------------------------

void
Kernel::startRunning(Process &p)
{
    // A permanent I/O failure terminates the process the next time it
    // gets a CPU (the failed-action outcome reaches job accounting via
    // onProcessExit).
    if (p.ioFailed) {
        PISO_TRACE(TraceCat::Kernel, events_.now(), p.name(),
                   " killed by failed I/O");
        p.segmentStart = events_.now();
        doExit(p);
        return;
    }

    if (config_.cacheAffinityCost > 0) {
        const Cpu &c = sched_.cpu(p.runningOn);
        const bool migrated =
            p.lastRanOn != kNoCpu && p.lastRanOn != p.runningOn;
        const bool polluted =
            c.lastSpu != kNoSpu && c.lastSpu != p.spu();
        if (migrated || polluted) {
            p.computeRemaining += config_.cacheAffinityCost;
            stats_.affinityPenalties.add();
        }
    }
    p.lastRanOn = p.runningOn;

    p.segmentStart = events_.now();
    if (p.computeRemaining > 0)
        beginSegment(p);
    else
        advance(p);
}

void
Kernel::stopRunning(Process &p)
{
    if (p.segmentEvent != kNoEvent) {
        events_.cancel(p.segmentEvent);
        p.segmentEvent = kNoEvent;
    }
    p.segmentFaults = false;
    chargeSegment(p);
}

void
Kernel::chargeSegment(Process &p)
{
    const Time elapsed = events_.now() - p.segmentStart;
    p.cpuTime += elapsed;
    p.computeRemaining -= std::min(elapsed, p.computeRemaining);
    p.segmentStart = events_.now();
}

Time
Kernel::sampleFaultTime(Process &p)
{
    if (p.workingSet == 0)
        return kTimeNever;
    // Growth phase: linear first-touch faulting.
    if (p.everTouched < p.workingSet)
        return p.rng().exponentialTime(p.growInterval);
    if (p.resident >= p.workingSet)
        return kTimeNever;
    // Steady state: a touch refaults with probability (1 - res/ws).
    const double deficit =
        1.0 - static_cast<double>(p.resident) /
                  static_cast<double>(p.workingSet);
    const double mean = static_cast<double>(p.touchInterval) / deficit;
    return static_cast<Time>(p.rng().exponential(mean));
}

void
Kernel::beginSegment(Process &p)
{
    if (p.computeRemaining == 0)
        PISO_PANIC("beginSegment with no compute for ", p.name());
    if (p.state() != ProcState::Running)
        PISO_PANIC("beginSegment on ", procStateName(p.state()),
                   " process ", p.name());

    const Time fault_in = sampleFaultTime(p);
    Time seg;
    if (fault_in < p.computeRemaining) {
        seg = std::max<Time>(fault_in, 1);
        p.segmentFaults = true;
    } else {
        seg = p.computeRemaining;
        p.segmentFaults = false;
    }
    p.segmentStart = events_.now();
    p.segmentEvent = events_.scheduleAfter(
        seg, [this, &p] { segmentEnd(p); }, "segEnd");
}

void
Kernel::segmentEnd(Process &p)
{
    p.segmentEvent = kNoEvent;
    chargeSegment(p);

    if (p.segmentFaults) {
        p.segmentFaults = false;
        pageFault(p);
        return;
    }

    if (p.computeRemaining > 0) {
        // Can only happen through rounding; just continue.
        beginSegment(p);
        return;
    }

    if (p.lockHeld >= 0) {
        auto granted = locks_.release(p.lockHeld, &p);
        p.lockHeld = -1;
        // Undo any inherited priority boost.
        if (const double *boosted = boostedNice_.find(p.pid())) {
            p.nice = *boosted;
            boostedNice_.erase(p.pid());
        }
        for (Process *q : granted)
            wakeProcess(*q);
    }
    advance(p);
}

void
Kernel::advance(Process &p)
{
    int guard = 0;
    while (true) {
        if (++guard > 100000)
            PISO_PANIC("process ", p.name(),
                       " spins on zero-cost actions");

        Action a;
        if (p.pendingAction) {
            a = *p.pendingAction;
            p.pendingAction.reset();
        } else {
            BehaviorContext ctx{events_.now(), p.rng()};
            a = p.behavior().next(p, ctx);
        }

        switch (execute(p, a)) {
          case Exec::Continue:
            continue;
          case Exec::Compute:
            beginSegment(p);
            return;
          case Exec::Blocked:
            return;
        }
    }
}

Kernel::Exec
Kernel::execute(Process &p, const Action &a)
{
    return std::visit(
        [&](const auto &act) -> Exec {
            using T = std::decay_t<decltype(act)>;
            if constexpr (std::is_same_v<T, ComputeAction>) {
                p.computeRemaining = std::max<Time>(act.duration, 1);
                return Exec::Compute;
            } else if constexpr (std::is_same_v<T, ReadAction>) {
                return doRead(p, act);
            } else if constexpr (std::is_same_v<T, WriteAction>) {
                return doWrite(p, act);
            } else if constexpr (std::is_same_v<T, GrowMemAction>) {
                p.workingSet += act.pages;
                return Exec::Continue;
            } else if constexpr (std::is_same_v<T, ShrinkMemAction>) {
                const std::uint64_t drop =
                    std::min(act.pages, p.resident);
                for (std::uint64_t i = 0; i < drop; ++i)
                    vm_.uncharge(p.spu());
                p.resident -= drop;
                p.workingSet -= std::min(act.pages, p.workingSet);
                p.everTouched = std::min(p.everTouched, p.workingSet);
                return Exec::Continue;
            } else if constexpr (std::is_same_v<T, SleepAction>) {
                p.wakeEvent = events_.scheduleAfter(
                    act.duration,
                    [this, &p] {
                        p.wakeEvent = kNoEvent;
                        wakeProcess(p);
                    },
                    "sleepWake");
                blockProcess(p);
                return Exec::Blocked;
            } else if constexpr (std::is_same_v<T, BarrierAction>) {
                return doBarrier(p, act);
            } else if constexpr (std::is_same_v<T, LockAction>) {
                return doLock(p, act);
            } else if constexpr (std::is_same_v<T, SendAction>) {
                if (!net_)
                    PISO_FATAL("SendAction without a network interface "
                               "(set SystemConfig::networkBitsPerSec)");
                NetMessage msg;
                msg.spu = p.spu();
                msg.pid = p.pid();
                msg.bytes = act.bytes;
                msg.onComplete = [this, &p](const NetMessage &) {
                    wakeProcess(p);
                };
                net_->submit(std::move(msg));
                blockProcess(p);
                return Exec::Blocked;
            } else {
                static_assert(std::is_same_v<T, ExitAction>);
                doExit(p);
                return Exec::Blocked;
            }
        },
        a);
}

Kernel::Exec
Kernel::doBarrier(Process &p, const BarrierAction &a)
{
    if (a.barrier < 0 ||
        static_cast<std::size_t>(a.barrier) >= barriers_.size())
        PISO_PANIC("unknown barrier ", a.barrier);
    Barrier &b = barriers_[static_cast<std::size_t>(a.barrier)];

    if (static_cast<int>(b.waiting.size()) + 1 >= b.width) {
        auto waiting = std::move(b.waiting);
        b.waiting.clear();
        for (Process *q : waiting)
            releaseFromBarrier(*q);
        return Exec::Continue;
    }
    b.waiting.push_back(&p);
    if (a.spin) {
        // Busy-wait: keep the CPU and burn cycles until released.
        p.spinning = true;
        p.computeRemaining = kTimeNever / 2;
        return Exec::Compute;
    }
    blockProcess(p);
    return Exec::Blocked;
}

void
Kernel::releaseFromBarrier(Process &q)
{
    if (!q.spinning) {
        wakeProcess(q);
        return;
    }
    q.spinning = false;
    q.computeRemaining = 0;
    if (q.state() == ProcState::Running) {
        // Stop the spin segment and move on to the next action.
        if (q.segmentEvent != kNoEvent) {
            events_.cancel(q.segmentEvent);
            q.segmentEvent = kNoEvent;
        }
        q.segmentFaults = false;
        const Time elapsed = events_.now() - q.segmentStart;
        q.cpuTime += elapsed;
        q.segmentStart = events_.now();
        advance(q);
    }
    // If Ready (preempted mid-spin), computeRemaining is now zero, so
    // the next dispatch advances straight to the next action.
}

Kernel::Exec
Kernel::doLock(Process &p, const LockAction &a)
{
    // The hold time executes as a compute segment; release happens in
    // segmentEnd when the hold completes.
    p.computeRemaining = std::max<Time>(a.hold, kUs);
    p.lockHeld = a.lock;
    if (locks_.acquire(a.lock, &p, a.exclusive))
        return Exec::Compute;

    // Priority inheritance (Section 3.4): transfer the blocked
    // process's priority to the holders so a starved holder cannot
    // stall a high-priority waiter.
    PISO_TRACE(TraceCat::Lock, events_.now(), p.name(),
               " blocks on lock", a.lock);
    if (config_.lockPriorityInheritance) {
        for (Process *q : locks_.holdersOf(a.lock)) {
            if (q->priority() > p.priority()) {
                PISO_TRACE(TraceCat::Lock, events_.now(), q->name(),
                           " inherits priority of ", p.name());
                if (!boostedNice_.contains(q->pid()))
                    boostedNice_[q->pid()] = q->nice;
                // Inherit the waiter's priority and keep it through
                // the rest of the critical section (the holder's own
                // usage during the hold must not re-demote it).
                q->nice -= (q->priority() - p.priority()) +
                           toSeconds(q->computeRemaining);
            }
        }
    }
    blockProcess(p);
    return Exec::Blocked;
}

void
Kernel::doExit(Process &p)
{
    for (std::uint64_t i = 0; i < p.resident; ++i)
        vm_.uncharge(p.spu());
    p.resident = 0;
    p.workingSet = 0;
    p.everTouched = 0;

    auto &procs = spuProcs_[p.spu()];
    procs.erase(std::remove(procs.begin(), procs.end(), &p), procs.end());

    PISO_TRACE(TraceCat::Kernel, events_.now(), "exit ", p.name(),
               " cpu=", formatTime(p.cpuTime), " blocked=",
               formatTime(p.blockedTime));
    --live_;
    sched_.processExited(&p);
    if (onProcessExit)
        onProcessExit(p);
}

// --------------------------------------------------------------------
// Memory management
// --------------------------------------------------------------------

void
Kernel::swapLocation(SpuId spu, DiskId &disk, std::uint64_t &sector,
                     Rng &rng, std::uint64_t pages)
{
    const DiskId *d = spuDisk_.find(spu);
    disk = d ? *d : 0;

    FileId extent;
    if (const FileId *known = swapExtent_.find(spu)) {
        extent = *known;
    } else {
        const std::uint64_t bytes =
            config_.swapExtentPages *
            static_cast<std::uint64_t>(fs_.blockBytes());
        extent = fs_.createExtent("swap-spu" + std::to_string(spu),
                                  disk, bytes);
        swapExtent_[spu] = extent;
    }
    const FileInfo &f = fs_.file(extent);
    const std::uint32_t spb = fs_.sectorsPerBlock();
    const std::uint64_t extentPages = f.sectors / spb;
    if (pages > extentPages)
        PISO_PANIC("pageout cluster of ", pages,
                   " pages exceeds the swap extent");
    // Clamp so a multi-page cluster stays inside the extent.
    const std::uint64_t lastStart = extentPages - pages;
    sector = f.startSector + rng.uniformInt(lastStart + 1) * spb;
    disk = f.disk;
}

Kernel::Reclaimed
Kernel::reclaimPage(SpuId victim)
{
    Reclaimed r;

    // 1. A clean buffer-cache page of the victim: free and instant.
    SpuId owner = kNoSpu;
    if (cache_.stealClean(victim, owner)) {
        r.found = true;
        r.dirty = false;
        r.from = owner;
        return r;
    }

    // 2. An anonymous page of the victim's largest process.
    if (const std::vector<Process *> *procs = spuProcs_.find(victim)) {
        Process *vp = nullptr;
        for (Process *q : *procs) {
            if (q->resident > 0 && (!vp || q->resident > vp->resident))
                vp = q;
        }
        if (vp) {
            --vp->resident;
            r.found = true;
            r.from = victim;
            r.dirty = vp->rng().chance(vp->dirtyFraction);
            if (r.dirty)
                swapLocation(victim, r.disk, r.sector, vp->rng());
            return r;
        }
    }

    // 3. A dirty buffer-cache page of the victim: must be written to
    //    its home location first.
    CacheBlock *dirtyBlk = nullptr;
    cache_.forEachDirty([&](CacheBlock &blk) {
        if (!dirtyBlk && blk.owner == victim && blk.waiters.empty())
            dirtyBlk = &blk;
    });
    if (dirtyBlk) {
        const FileInfo &f = fs_.file(dirtyBlk->key.file);
        r.found = true;
        r.dirty = true;
        r.from = victim;
        r.disk = f.disk;
        r.sector = fs_.blockSector(dirtyBlk->key.file,
                                   dirtyBlk->key.block);
        // The block leaves the cache now; the data is written from
        // limbo (the frame is reused once the write completes).
        cache_.markClean(*dirtyBlk);
        cache_.remove(dirtyBlk->key);
        return r;
    }

    return r;
}

Kernel::Reclaimed
Kernel::reclaimAny(SpuId requester)
{
    SpuId first = vm_.victimSpu(requester);
    // Self-reclaim (isolation) and over-allowed reclaim (revocation)
    // are deterministic; a plain global shortage victimises SPUs in
    // proportion to their footprint, like global LRU.
    if (first != kNoSpu && first != requester &&
        vm_.overAllowed(first) == 0) {
        const SpuId weighted = vm_.weightedVictim(rng_);
        if (weighted != kNoSpu)
            first = weighted;
    }
    if (first != kNoSpu) {
        Reclaimed r = reclaimPage(first);
        if (r.found)
            return r;
    }
    // Fall back to the largest non-kernel users.
    std::vector<SpuId> order = vm_.spus();
    std::sort(order.begin(), order.end(), [this](SpuId a, SpuId b) {
        return vm_.levels(a).used > vm_.levels(b).used;
    });
    for (SpuId spu : order) {
        if (spu == kKernelSpu || spu == first)
            continue;
        Reclaimed r = reclaimPage(spu);
        if (r.found)
            return r;
    }
    return Reclaimed{};
}

void
Kernel::writeReclaimedPage(const Reclaimed &r, std::function<void()> done)
{
    stats_.pageoutWrites.add();
    DiskRequest req;
    req.spu = kSharedSpu;
    req.startSector = r.sector;
    req.sectors = fs_.sectorsPerBlock();
    req.write = true;
    req.charges = {{r.from, fs_.sectorsPerBlock()}};
    // The frame must be granted whether or not the writeback made it
    // to disk; a permanently failed write means the victim page's data
    // is lost, not that the waiting allocation may hang.
    submitIo(
        r.disk, std::move(req),
        [done](const DiskRequest &) { done(); },
        [this, done] {
            stats_.lostWrites.add();
            done();
        });
}

bool
Kernel::acquireFrame(Process &p, std::function<void()> onGranted)
{
    const SpuId spu = p.spu();
    if (vm_.tryCharge(spu))
        return true;
    if (vm_.atLimit(spu))
        vm_.notePressure(spu);

    Reclaimed r = reclaimAny(spu);
    if (!r.found)
        PISO_FATAL("no reclaimable memory anywhere (machine too small "
                   "for the workload)");
    PISO_TRACE(TraceCat::Mem, events_.now(), "reclaim from spu", r.from,
               r.dirty ? " (dirty, writeback)" : " (clean)", " for ",
               p.name());

    if (!r.dirty) {
        vm_.transferCharge(r.from, spu);
        return true;
    }

    writeReclaimedPage(
        r, [this, spu, from = r.from, fn = std::move(onGranted)] {
            vm_.transferCharge(from, spu);
            fn();
        });
    return false;
}

bool
Kernel::frameForCache(SpuId spu)
{
    if (vm_.tryCharge(spu))
        return true;

    SpuId owner = kNoSpu;
    if (vm_.atLimit(spu)) {
        vm_.notePressure(spu);
        // Isolation: recycle only the SPU's own clean cache pages.
        if (cache_.stealClean(spu, owner))
            return true; // charge stays with the same SPU
        return false;
    }
    // Global shortage: steal any clean cache page.
    if (cache_.stealClean(kNoSpu, owner)) {
        vm_.transferCharge(owner, spu);
        return true;
    }
    return false;
}

void
Kernel::pageFault(Process &p)
{
    const bool zero_fill = p.everTouched < p.workingSet;

    PISO_TRACE(TraceCat::Mem, events_.now(), "fault ", p.name(),
               zero_fill ? " (zero-fill)" : " (refault)", " resident=",
               p.resident, "/", p.workingSet);
    if (zero_fill) {
        stats_.zeroFills.add();
        ++p.zeroFillFaults;
        auto finish = [this, &p] {
            ++p.everTouched;
            ++p.resident;
            wakeProcess(p);
        };
        if (acquireFrame(p, finish)) {
            ++p.everTouched;
            ++p.resident;
            p.computeRemaining += config_.zeroFillCost;
            if (numa_ != nullptr) {
                p.computeRemaining += numa_->touchCost(
                    p.runningOn, p.spu(), vm_.pageBytes(),
                    events_.now());
            }
            beginSegment(p);
            return;
        }
        blockProcess(p);
        return;
    }

    // Refault: get a frame, then read the page back from swap.
    stats_.refaults.add();
    ++p.refaults;
    auto swap_in = [this, &p] {
        DiskId d;
        std::uint64_t sector;
        swapLocation(p.spu(), d, sector, p.rng());
        DiskRequest req;
        req.spu = p.spu();
        req.pid = p.pid();
        req.startSector = sector;
        req.sectors = fs_.sectorsPerBlock();
        req.write = false;
        ++p.diskReads;
        submitIo(
            d, std::move(req),
            [this, &p](const DiskRequest &) {
                ++p.resident;
                wakeProcess(p);
            },
            [this, &p] {
                // The frame is charged and stays with the process,
                // but its backing data is gone: fatal for the process.
                ++p.resident;
                p.ioFailed = true;
                wakeProcess(p);
            });
    };

    const bool have_frame = acquireFrame(p, swap_in);
    blockProcess(p);
    if (have_frame)
        swap_in();
}

void
Kernel::flushClusteredPageouts(
    const std::map<std::pair<SpuId, DiskId>, std::uint64_t> &dirty)
{
    // Real pagers cluster pageouts: contiguous swap slots, one large
    // request instead of a random single-page write per victim page.
    const std::uint32_t spb = fs_.sectorsPerBlock();
    const std::uint64_t maxPages = config_.maxIoSectors / spb;
    for (const auto &[key, total] : dirty) {
        const auto [spu, diskId] = key;
        std::uint64_t remaining = total;
        while (remaining > 0) {
            const std::uint64_t n = std::min(remaining, maxPages);
            remaining -= n;
            DiskId d;
            std::uint64_t sector;
            swapLocation(spu, d, sector, rng_, n);
            stats_.pageoutWrites.add(n);
            DiskRequest req;
            req.spu = kSharedSpu;
            req.startSector = sector;
            req.sectors = static_cast<std::uint32_t>(n * spb);
            req.write = true;
            req.charges = {
                {spu, static_cast<std::uint32_t>(n * spb)}};
            auto uncharge = [this, spu = spu, n] {
                for (std::uint64_t i = 0; i < n; ++i)
                    vm_.uncharge(spu);
            };
            submitIo(
                d, std::move(req),
                [uncharge](const DiskRequest &) { uncharge(); },
                [this, uncharge, n] {
                    // Evicted pages whose writeback failed: data lost,
                    // but the frames still return to the pool.
                    stats_.lostWrites.add(n);
                    uncharge();
                });
        }
    }
}

void
Kernel::pageoutDaemon()
{
    // Dirty evictions are accumulated per (SPU, disk) and written as
    // clustered requests at the end of the pass.
    std::map<std::pair<SpuId, DiskId>, std::uint64_t> dirty;
    auto spuDisk = [this](SpuId spu) {
        const DiskId *d = spuDisk_.find(spu);
        return d ? *d : DiskId{0};
    };

    // 1. Enforce allowed levels: reclaim from over-allowed SPUs
    //    (revocation of lent memory, Section 3.2).
    for (SpuId spu : vm_.spus()) {
        if (spu == kKernelSpu)
            continue;
        std::uint64_t over = vm_.overAllowed(spu);
        std::uint64_t n = std::min(over, config_.pageoutBatch);
        for (std::uint64_t i = 0; i < n; ++i) {
            Reclaimed r = reclaimPage(spu);
            if (!r.found)
                break;
            if (!r.dirty)
                vm_.uncharge(r.from);
            else
                ++dirty[{r.from, spuDisk(r.from)}];
        }
    }

    // 2. SMP-style global replacement with hysteresis: wake when free
    //    drops under half the reserve, refill to the full reserve.
    if (config_.globalReplacement &&
        vm_.freePages() < vm_.reservePages() / 2) {
        std::uint64_t guard = config_.pageoutBatch;
        while (vm_.freePages() + pendingPageouts(dirty) <
                   vm_.reservePages() &&
               guard-- > 0) {
            Reclaimed r = reclaimAny(kNoSpu);
            if (!r.found)
                break;
            if (!r.dirty)
                vm_.uncharge(r.from);
            else
                ++dirty[{r.from, spuDisk(r.from)}];
        }
    }

    flushClusteredPageouts(dirty);
}

std::uint64_t
Kernel::pendingPageouts(
    const std::map<std::pair<SpuId, DiskId>, std::uint64_t> &dirty)
{
    std::uint64_t n = 0;
    for (const auto &[key, count] : dirty)
        n += count;
    return n;
}

// --------------------------------------------------------------------
// I/O path: fault handling (timeout, bounded retry, propagation)
// --------------------------------------------------------------------

const SpuFaultStats &
Kernel::spuFaults(SpuId spu) const
{
    return spuFaults_[spu];
}

Time
Kernel::retryBackoff(Time base, int attempt)
{
    // Exponential, but capped: a large configured base with a high
    // attempt count must saturate at the cap rather than overflow Time
    // (base << shift silently wrapped before). One minute dwarfs any
    // real ioRetryLimit schedule while keeping the default 20 ms base
    // schedule (20/40/80 ms ...) bit-for-bit unchanged.
    return retryBackoffClamped(base, attempt, 60 * kSec);
}

void
Kernel::submitIo(DiskId disk, DiskRequest req,
                 std::function<void(const DiskRequest &)> onSuccess,
                 std::function<void()> onFail)
{
    auto ctx = std::make_shared<IoCtx>();
    ctx->disk = disk;
    ctx->req = std::move(req);
    ctx->req.onComplete = nullptr;  // per-attempt; filled by issueIo
    ctx->onSuccess = std::move(onSuccess);
    ctx->onFail = std::move(onFail);
    issueIo(std::move(ctx));
}

void
Kernel::issueIo(std::shared_ptr<IoCtx> ctx)
{
    ++ctx->attempt;
    const int attempt = ctx->attempt;

    if (config_.ioTimeout > 0) {
        ctx->timeoutEvent = events_.scheduleAfter(
            config_.ioTimeout,
            [this, ctx, attempt] {
                if (ctx->settled || attempt != ctx->attempt)
                    return;
                ctx->timeoutEvent = kNoEvent;
                stats_.ioTimeouts.add();
                spuFaults_[ctx->req.spu].ioTimeouts.add();
                PISO_TRACE(TraceCat::Disk, events_.now(), "io timeout"
                           " disk", ctx->disk, " spu", ctx->req.spu,
                           " attempt ", attempt);
                ioAttemptFailed(ctx);
            },
            "ioTimeout");
    }

    DiskRequest req = ctx->req;
    req.onComplete = [this, ctx, attempt](const DiskRequest &r) {
        // A completion from an attempt the watchdog already gave up on
        // is stale: the retry (or the failure path) owns the I/O now.
        if (ctx->settled || attempt != ctx->attempt)
            return;
        if (ctx->timeoutEvent != kNoEvent) {
            events_.cancel(ctx->timeoutEvent);
            ctx->timeoutEvent = kNoEvent;
        }
        if (!r.failed) {
            ctx->settled = true;
            if (ctx->onSuccess)
                ctx->onSuccess(r);
            return;
        }
        stats_.diskErrors.add();
        spuFaults_[ctx->req.spu].diskErrors.add();
        ioAttemptFailed(ctx);
    };
    disks_.at(static_cast<std::size_t>(ctx->disk))->submit(std::move(req));
}

void
Kernel::ioAttemptFailed(std::shared_ptr<IoCtx> ctx)
{
    const bool diskDead =
        disks_.at(static_cast<std::size_t>(ctx->disk))->dead();
    if (ctx->attempt > config_.ioRetryLimit || diskDead) {
        ctx->settled = true;
        stats_.failedIos.add();
        spuFaults_[ctx->req.spu].failedOps.add();
        PISO_TRACE(TraceCat::Disk, events_.now(), "io failed disk",
                   ctx->disk, " spu", ctx->req.spu, " after ",
                   ctx->attempt, " attempts",
                   diskDead ? " (disk dead)" : "");
        if (ctx->onFail)
            ctx->onFail();
        return;
    }
    stats_.ioRetries.add();
    spuFaults_[ctx->req.spu].ioRetries.add();
    const Time delay = retryBackoff(config_.ioRetryBackoff, ctx->attempt);
    PISO_TRACE(TraceCat::Disk, events_.now(), "io retry disk",
               ctx->disk, " spu", ctx->req.spu, " attempt ",
               ctx->attempt + 1, " in ", formatTime(delay));
    events_.scheduleAfter(
        delay, [this, ctx] { issueIo(ctx); }, "ioRetry");
}

void
Kernel::failProcessIo(Process &p)
{
    p.ioFailed = true;
    ioArrived(p);
}

void
Kernel::dropFailedReadBlocks(const std::vector<BlockKey> &keys)
{
    for (const BlockKey &key : keys) {
        CacheBlock *blk = cache_.find(key);
        if (!blk)
            continue;
        // Run the waiters so nobody hangs on the block, then drop it
        // (the data never arrived) and return the frame.
        cache_.markValid(*blk);
        const SpuId owner = blk->owner;
        cache_.remove(key);
        vm_.uncharge(owner);
    }
}

// --------------------------------------------------------------------
// I/O path
// --------------------------------------------------------------------

void
Kernel::ioArrived(Process &p)
{
    if (p.pendingIo <= 0)
        PISO_PANIC("spurious I/O completion for ", p.name());
    if (--p.pendingIo == 0)
        wakeProcess(p);
}

namespace {

/** Contiguous run of block numbers. */
struct BlockRun
{
    std::uint64_t first = 0;
    std::uint64_t count = 0;
};

/** Split a sorted block list into contiguous runs of <= maxBlocks. */
std::vector<BlockRun>
makeRuns(const std::vector<std::uint64_t> &blocks, std::uint64_t maxBlocks)
{
    std::vector<BlockRun> runs;
    for (std::uint64_t b : blocks) {
        if (!runs.empty() && runs.back().first + runs.back().count == b &&
            runs.back().count < maxBlocks) {
            ++runs.back().count;
        } else {
            runs.push_back(BlockRun{b, 1});
        }
    }
    return runs;
}

} // namespace

Kernel::Exec
Kernel::doRead(Process &p, const ReadAction &a)
{
    const FileInfo &f = fs_.file(a.file);
    const std::uint64_t first = a.offset / fs_.blockBytes();
    const std::uint64_t nblocks = fs_.blockCount(a.file, a.offset, a.bytes);
    const std::uint32_t spb = fs_.sectorsPerBlock();
    const std::uint64_t maxBlocks = config_.maxIoSectors / spb;

    std::vector<std::uint64_t> missing;
    for (std::uint64_t b = first; b < first + nblocks; ++b) {
        BlockKey key{a.file, b};
        CacheBlock *blk = cache_.find(key);
        if (blk) {
            cache_.touch(*blk);
            if (blk->owner != p.spu() && blk->owner != kSharedSpu &&
                blk->owner != kNoSpu) {
                // Second SPU touches the page: reclassify as shared.
                vm_.transferCharge(blk->owner, kSharedSpu);
                cache_.setOwner(*blk, kSharedSpu);
            }
            if (blk->valid) {
                stats_.cacheHits.add();
            } else {
                // In flight (read-ahead); wait for it.
                stats_.cacheMisses.add();
                ++p.pendingIo;
                blk->waiters.push_back([this, &p] { ioArrived(p); });
            }
            continue;
        }
        stats_.cacheMisses.add();
        missing.push_back(b);
    }

    for (const BlockRun &run : makeRuns(missing, maxBlocks)) {
        // Insert cache entries for the blocks we can hold; blocks with
        // no frame are read but not cached (bypass).
        std::vector<BlockKey> cached;
        for (std::uint64_t i = 0; i < run.count; ++i) {
            BlockKey key{a.file, run.first + i};
            if (frameForCache(p.spu())) {
                cache_.insert(key, p.spu(), false);
                cached.push_back(key);
            }
        }
        DiskRequest req;
        req.spu = p.spu();
        req.pid = p.pid();
        req.startSector = fs_.blockSector(a.file, run.first);
        req.sectors = static_cast<std::uint32_t>(run.count * spb);
        req.write = false;
        ++p.pendingIo;
        ++p.diskReads;
        stats_.readRequests.add();
        submitIo(
            f.disk, std::move(req),
            [this, &p, cached](const DiskRequest &) {
                for (const BlockKey &key : cached) {
                    if (CacheBlock *blk = cache_.find(key))
                        cache_.markValid(*blk);
                }
                ioArrived(p);
            },
            [this, &p, cached] {
                dropFailedReadBlocks(cached);
                failProcessIo(p);
            });
    }

    maybeReadAhead(p, a.file, first + nblocks);

    // Copying between cache and user buffers costs CPU; it runs as a
    // compute segment once any blocking I/O has completed.
    p.computeRemaining += nblocks * config_.copyCostPerBlock;

    if (p.pendingIo > 0) {
        blockProcess(p);
        return Exec::Blocked;
    }
    return p.computeRemaining > 0 ? Exec::Compute : Exec::Continue;
}

void
Kernel::maybeReadAhead(Process &p, FileId file, std::uint64_t endBlock)
{
    const auto key = std::make_pair(p.pid(), file);
    auto it = readCursor_.find(key);
    const bool sequential = it != readCursor_.end() &&
                            it->second <= endBlock &&
                            endBlock - it->second <=
                                config_.readAheadBlocks;
    readCursor_[key] = endBlock;
    if (!sequential)
        return;

    const FileInfo &f = fs_.file(file);
    const std::uint32_t spb = fs_.sectorsPerBlock();
    const std::uint64_t fileBlocks = f.sectors / spb;
    const std::uint64_t last =
        std::min<std::uint64_t>(endBlock + config_.readAheadBlocks,
                                fileBlocks);

    std::vector<std::uint64_t> toFetch;
    for (std::uint64_t b = endBlock; b < last; ++b) {
        BlockKey bkey{file, b};
        if (cache_.find(bkey))
            continue;
        if (!frameForCache(p.spu()))
            break; // no memory: stop prefetching
        cache_.insert(bkey, p.spu(), false);
        toFetch.push_back(b);
    }

    const std::uint64_t maxBlocks = config_.maxIoSectors / spb;
    for (const BlockRun &run : makeRuns(toFetch, maxBlocks)) {
        DiskRequest req;
        req.spu = p.spu();
        req.pid = p.pid();
        req.startSector = fs_.blockSector(file, run.first);
        req.sectors = static_cast<std::uint32_t>(run.count * spb);
        req.write = false;
        stats_.readAheadRequests.add();
        std::vector<BlockKey> keys;
        for (std::uint64_t i = 0; i < run.count; ++i)
            keys.push_back(BlockKey{file, run.first + i});
        submitIo(
            f.disk, std::move(req),
            [this, keys](const DiskRequest &) {
                for (const BlockKey &k : keys) {
                    if (CacheBlock *blk = cache_.find(k))
                        cache_.markValid(*blk);
                }
            },
            // Speculative read: nobody is blocked on it unless they
            // found the in-flight block and queued as waiters — those
            // are released by the drop.
            [this, keys] { dropFailedReadBlocks(keys); });
    }
}

bool
Kernel::throttled(DiskId disk) const
{
    const std::uint64_t *backlog = flushBacklog_.find(disk);
    return backlog && *backlog > config_.writeThrottleSectors;
}

void
Kernel::submitFlushWrite(DiskId disk, DiskRequest req)
{
    flushBacklog_[disk] += req.sectors;
    auto inner = std::move(req.onComplete);
    req.onComplete = [this, disk, sectors = req.sectors,
                      inner = std::move(inner)](const DiskRequest &r) {
        flushBacklog_[disk] -= sectors;
        if (inner)
            inner(r);
        wakeThrottled(disk);
    };
    disks_.at(static_cast<std::size_t>(disk))->submit(std::move(req));
}

void
Kernel::wakeThrottled(DiskId disk)
{
    if (flushBacklog_[disk] > config_.writeThrottleSectors / 2)
        return;
    std::vector<Process *> *list = throttleWaiters_.find(disk);
    if (!list || list->empty())
        return;
    auto waiters = std::move(*list);
    list->clear();
    for (Process *q : waiters)
        wakeProcess(*q);
}

Kernel::Exec
Kernel::doWrite(Process &p, const WriteAction &a)
{
    const FileInfo &f = fs_.file(a.file);

    // Delayed-write throttling: too much flush backlog on this disk
    // parks the writer until the queue half-drains.
    if (!a.sync && throttled(f.disk)) {
        PISO_TRACE(TraceCat::Disk, events_.now(), p.name(),
                   " throttled on disk", f.disk);
        stats_.throttleStalls.add();
        p.pendingAction = a;
        throttleWaiters_[f.disk].push_back(&p);
        blockProcess(p);
        return Exec::Blocked;
    }

    const std::uint64_t first = a.offset / fs_.blockBytes();
    const std::uint64_t nblocks = fs_.blockCount(a.file, a.offset, a.bytes);
    const std::uint32_t spb = fs_.sectorsPerBlock();
    const std::uint64_t maxBlocks = config_.maxIoSectors / spb;

    std::vector<std::uint64_t> bypass;
    std::vector<std::uint64_t> dirtied;
    for (std::uint64_t b = first; b < first + nblocks; ++b) {
        BlockKey key{a.file, b};
        CacheBlock *blk = cache_.find(key);
        if (blk) {
            cache_.touch(*blk);
            if (blk->owner != p.spu() && blk->owner != kSharedSpu &&
                blk->owner != kNoSpu) {
                vm_.transferCharge(blk->owner, kSharedSpu);
                cache_.setOwner(*blk, kSharedSpu);
            }
            cache_.markDirty(*blk);
            dirtied.push_back(b);
        } else if (frameForCache(p.spu())) {
            CacheBlock &nb = cache_.insert(key, p.spu(), true);
            cache_.markDirty(nb);
            dirtied.push_back(b);
        } else {
            bypass.push_back(b);
        }
    }

    // Write-through for blocks that found no frame: the process's own
    // (blocking) requests.
    for (const BlockRun &run : makeRuns(bypass, maxBlocks)) {
        DiskRequest req;
        req.spu = p.spu();
        req.pid = p.pid();
        req.startSector = fs_.blockSector(a.file, run.first);
        req.sectors = static_cast<std::uint32_t>(run.count * spb);
        req.write = true;
        ++p.pendingIo;
        ++p.diskWrites;
        stats_.bypassWrites.add();
        submitIo(
            f.disk, std::move(req),
            [this, &p](const DiskRequest &) { ioArrived(p); },
            [this, &p] { failProcessIo(p); });
    }

    if (a.sync) {
        // Force this action's cached blocks to disk under the
        // process's own SPU (metadata-style synchronous writes).
        for (const BlockRun &run : makeRuns(dirtied, maxBlocks)) {
            std::vector<BlockKey> keys;
            for (std::uint64_t i = 0; i < run.count; ++i) {
                BlockKey k{a.file, run.first + i};
                if (CacheBlock *blk = cache_.find(k)) {
                    blk->flushing = true;
                    keys.push_back(k);
                }
            }
            DiskRequest req;
            req.spu = p.spu();
            req.pid = p.pid();
            req.startSector = fs_.blockSector(a.file, run.first);
            req.sectors = static_cast<std::uint32_t>(run.count * spb);
            req.write = true;
            ++p.pendingIo;
            ++p.diskWrites;
            stats_.syncWriteRequests.add();
            submitIo(
                f.disk, std::move(req),
                [this, &p, keys](const DiskRequest &) {
                    for (const BlockKey &k : keys) {
                        if (CacheBlock *blk = cache_.find(k))
                            cache_.markClean(*blk);
                    }
                    ioArrived(p);
                },
                [this, &p, keys] {
                    // The sync write is reported failed to the writer;
                    // the blocks stay dirty for bdflush (which drops
                    // them if the disk is truly gone).
                    for (const BlockKey &k : keys) {
                        if (CacheBlock *blk = cache_.find(k))
                            blk->flushing = false;
                    }
                    failProcessIo(p);
                });
        }
    }

    if (cache_.dirtyCount() >
        static_cast<std::size_t>(config_.dirtyHighWater *
                                 static_cast<double>(vm_.totalPages()))) {
        kickBdflush();
    }

    p.computeRemaining += nblocks * config_.copyCostPerBlock;

    if (p.pendingIo > 0) {
        blockProcess(p);
        return Exec::Blocked;
    }
    return p.computeRemaining > 0 ? Exec::Compute : Exec::Continue;
}

void
Kernel::kickBdflush()
{
    if (bdflushPending_)
        return;
    bdflushPending_ = true;
    events_.scheduleAfter(
        kMs, [this] { bdflush(); }, "bdflushKick");
}

void
Kernel::bdflushPeriodicHelper()
{
    bdflush();
    events_.scheduleAfter(config_.bdflushPeriod,
                          [this] { bdflushPeriodicHelper(); }, "bdflush");
}

void
Kernel::pageoutDaemonHelper()
{
    pageoutDaemon();
    events_.scheduleAfter(config_.pageoutPeriod,
                          [this] { pageoutDaemonHelper(); }, "pageout");
}

void
Kernel::bdflush()
{
    bdflushPending_ = false;

    // Gather dirty blocks per disk, sorted by sector, and batch them
    // into shared-SPU write requests (Section 3.3: shared delayed
    // writes scheduled under the shared SPU, pages charged to the
    // owning user SPUs once the write is done).
    struct Item
    {
        std::uint64_t sector;
        BlockKey key;
        SpuId owner;
    };
    std::map<DiskId, std::vector<Item>> perDisk;
    cache_.forEachDirty([&](CacheBlock &blk) {
        const FileInfo &f = fs_.file(blk.key.file);
        perDisk[f.disk].push_back(
            Item{fs_.blockSector(blk.key.file, blk.key.block), blk.key,
                 blk.owner});
    });

    const std::uint32_t spb = fs_.sectorsPerBlock();
    for (auto &[disk, items] : perDisk) {
        // A dead disk can never take its dirty data back: drop the
        // blocks (counted as lost writes) instead of re-flushing them
        // forever — otherwise the end-of-run drain would hang.
        if (disks_.at(static_cast<std::size_t>(disk))->dead()) {
            stats_.lostWrites.add(items.size());
            PISO_TRACE(TraceCat::Disk, events_.now(), "bdflush drops ",
                       items.size(), " dirty blocks for dead disk",
                       disk);
            for (const Item &item : items) {
                cache_.remove(item.key);
                vm_.uncharge(item.owner);
            }
            continue;
        }
        std::sort(items.begin(), items.end(),
                  [](const Item &x, const Item &y) {
                      return x.sector < y.sector;
                  });
        std::size_t i = 0;
        while (i < items.size()) {
            // Coalesce a contiguous sector run.
            std::size_t j = i + 1;
            while (j < items.size() &&
                   items[j].sector == items[j - 1].sector + spb &&
                   (j - i + 1) * spb <= config_.maxIoSectors) {
                ++j;
            }

            std::vector<BlockKey> keys;
            SpuTable<std::uint32_t> chargeMap;
            for (std::size_t k = i; k < j; ++k) {
                keys.push_back(items[k].key);
                chargeMap[items[k].owner] += spb;
                if (CacheBlock *blk = cache_.find(items[k].key))
                    blk->flushing = true;
            }

            DiskRequest req;
            req.spu = kSharedSpu;
            req.startSector = items[i].sector;
            req.sectors = static_cast<std::uint32_t>((j - i) * spb);
            req.write = true;
            req.charges.clear();
            for (const auto &[owner, sectors] : chargeMap)
                req.charges.emplace_back(owner, sectors);
            req.onComplete = [this,
                              keys = std::move(keys)](const DiskRequest &r) {
                if (r.failed) {
                    // Delayed writes re-dirty and retry: clearing the
                    // flushing flag re-exposes the blocks to the next
                    // bdflush pass (or the dead-disk drop above).
                    stats_.diskErrors.add();
                    for (const BlockKey &k : keys) {
                        if (CacheBlock *blk = cache_.find(k))
                            blk->flushing = false;
                    }
                    return;
                }
                for (const BlockKey &k : keys) {
                    if (CacheBlock *blk = cache_.find(k))
                        cache_.markClean(*blk);
                }
            };
            stats_.bdflushRequests.add();
            PISO_TRACE(TraceCat::Disk, events_.now(), "bdflush disk",
                       disk, " sectors=", req.sectors);
            submitFlushWrite(disk, std::move(req));
            i = j;
        }
    }
}

// --------------------------------------------------------------------
// Checkpoint
// --------------------------------------------------------------------

void
Kernel::requireIoQuiescent() const
{
    for (const DiskDevice *d : disks_) {
        if (d->busy() || d->queueDepth() > 0) {
            throw InvariantError("disk '" + d->name() +
                                 "' active at checkpoint time");
        }
    }
    if (net_ && (net_->busy() || net_->queueDepth() > 0))
        throw InvariantError("network active at checkpoint time");
    for (DiskId d : flushBacklog_.ids()) {
        if (const std::uint64_t *v = flushBacklog_.find(d); v && *v != 0) {
            throw InvariantError(
                "flush backlog outstanding at checkpoint time");
        }
    }
    for (DiskId d : throttleWaiters_.ids()) {
        if (const std::vector<Process *> *v = throttleWaiters_.find(d);
            v && !v->empty()) {
            throw InvariantError(
                "write-throttled processes at checkpoint time");
        }
    }
    for (const auto &p : processes_) {
        if (p->pendingIo > 0) {
            throw InvariantError("process '" + p->name() +
                                 "' waiting on I/O at checkpoint time");
        }
    }
}

void
Kernel::save(CkptWriter &w) const
{
    rng_.save(w);
    stats_.save(w);
    spuFaults_.saveTable(
        w, [](CkptWriter &wr, const SpuFaultStats &s) { s.save(wr); });

    w.i64(nextPid_);
    w.u64(live_);
    w.u64(processes_.size());
    for (const auto &p : processes_) {
        w.i64(p->pid());
        p->save(w);
    }

    w.u64(barriers_.size());
    for (const Barrier &b : barriers_) {
        w.i64(b.width);
        w.u64(b.waiting.size());
        for (const Process *q : b.waiting)
            w.i64(q->pid());
    }
    locks_.save(w);
    boostedNice_.saveTable(
        w, [](CkptWriter &wr, const double &v) { wr.f64(v); });

    w.boolean(bdflushPending_);
    w.u64(readCursor_.size());
    for (const auto &[key, block] : readCursor_) {
        w.i64(key.first);
        w.i64(key.second);
        w.u64(block);
    }
    swapExtent_.saveTable(
        w, [](CkptWriter &wr, const FileId &f) { wr.i64(f); });
}

void
Kernel::load(CkptReader &r)
{
    rng_.load(r);
    stats_.load(r);
    spuFaults_.loadTable(
        r, [](CkptReader &rd, SpuFaultStats &s) { s.load(rd); });

    nextPid_ = static_cast<Pid>(r.i64());
    const std::uint64_t live = r.u64();
    const std::uint64_t count = r.u64();
    if (count != processes_.size()) {
        throw ConfigError("checkpoint process count " +
                          std::to_string(count) +
                          " does not match the replayed configuration");
    }
    auto byPid = [this](Pid pid) -> Process * {
        Process *p = process(pid);
        if (!p) {
            throw ConfigError("checkpoint references unknown pid " +
                              std::to_string(pid));
        }
        return p;
    };
    for (const auto &p : processes_) {
        const Pid pid = static_cast<Pid>(r.i64());
        if (pid != p->pid()) {
            throw ConfigError(
                "checkpoint process order does not match the "
                "replayed configuration");
        }
        p->load(r);
    }

    // Membership lists derive from per-process state: rebuild them in
    // pid order, which is exactly the order createProcess built and
    // doExit's std::remove preserved in the original run.
    live_ = 0;
    for (SpuId s : spuProcs_.ids())
        spuProcs_[s].clear();
    for (const auto &p : processes_) {
        if (p->state() == ProcState::Exited)
            continue;
        spuProcs_[p->spu()].push_back(p.get());
        ++live_;
    }
    if (live_ != live) {
        throw ConfigError("checkpoint live-process count disagrees "
                          "with per-process states");
    }

    const std::uint64_t nbarriers = r.u64();
    if (nbarriers != barriers_.size()) {
        throw ConfigError("checkpoint barrier count " +
                          std::to_string(nbarriers) +
                          " does not match the replayed configuration");
    }
    for (Barrier &b : barriers_) {
        b.width = static_cast<int>(r.i64());
        const std::uint64_t waiting = r.u64();
        b.waiting.clear();
        for (std::uint64_t i = 0; i < waiting; ++i)
            b.waiting.push_back(byPid(static_cast<Pid>(r.i64())));
    }
    locks_.load(r, byPid);
    boostedNice_.loadTable(
        r, [](CkptReader &rd, double &v) { v = rd.f64(); });

    bdflushPending_ = r.boolean();
    const std::uint64_t cursors = r.u64();
    readCursor_.clear();
    for (std::uint64_t i = 0; i < cursors; ++i) {
        const Pid pid = static_cast<Pid>(r.i64());
        const FileId file = static_cast<FileId>(r.i64());
        readCursor_[{pid, file}] = r.u64();
    }
    swapExtent_.loadTable(
        r, [](CkptReader &rd, FileId &f) { f = static_cast<FileId>(rd.i64()); });
}

Pid
Kernel::eventOwner(EventId id) const
{
    for (const auto &p : processes_) {
        if (p->segmentEvent == id || p->startEvent == id ||
            p->wakeEvent == id)
            return p->pid();
    }
    return kNoPid;
}

void
Kernel::restoreProcStart(Pid pid, Time when, std::uint64_t seq)
{
    Process *p = process(pid);
    if (!p)
        throw ConfigError("checkpoint start event for unknown pid " +
                          std::to_string(pid));
    p->startEvent = events_.scheduleRestored(
        when, seq,
        [this, p] {
            p->startEvent = kNoEvent;
            sched_.processReady(p);
        },
        "procStart");
}

void
Kernel::restoreSegEnd(Pid pid, Time when, std::uint64_t seq)
{
    Process *p = process(pid);
    if (!p)
        throw ConfigError("checkpoint segment event for unknown pid " +
                          std::to_string(pid));
    p->segmentEvent = events_.scheduleRestored(
        when, seq, [this, p] { segmentEnd(*p); }, "segEnd");
}

void
Kernel::restoreSleepWake(Pid pid, Time when, std::uint64_t seq)
{
    Process *p = process(pid);
    if (!p)
        throw ConfigError("checkpoint wake event for unknown pid " +
                          std::to_string(pid));
    p->wakeEvent = events_.scheduleRestored(
        when, seq,
        [this, p] {
            p->wakeEvent = kNoEvent;
            wakeProcess(*p);
        },
        "sleepWake");
}

void
Kernel::restoreBdflush(Time when, std::uint64_t seq)
{
    events_.scheduleRestored(
        when, seq, [this] { bdflushPeriodicHelper(); }, "bdflush");
}

void
Kernel::restorePageout(Time when, std::uint64_t seq)
{
    events_.scheduleRestored(
        when, seq, [this] { pageoutDaemonHelper(); }, "pageout");
}

void
Kernel::restoreBdflushKick(Time when, std::uint64_t seq)
{
    events_.scheduleRestored(
        when, seq, [this] { bdflush(); }, "bdflushKick");
}

} // namespace piso
