#include "src/os/process.hh"

#include "src/sim/log.hh"

namespace piso {

const char *
procStateName(ProcState s)
{
    switch (s) {
      case ProcState::Embryo:
        return "embryo";
      case ProcState::Ready:
        return "ready";
      case ProcState::Running:
        return "running";
      case ProcState::Blocked:
        return "blocked";
      case ProcState::Exited:
        return "exited";
    }
    return "?";
}

Process::Process(Pid pid, SpuId spu, JobId job, std::string name,
                 std::unique_ptr<Behavior> behavior, Rng rng)
    : pid_(pid), spu_(spu), job_(job), name_(std::move(name)),
      behavior_(std::move(behavior)), rng_(rng)
{
    if (!behavior_)
        PISO_FATAL("process '", name_, "' created without a behavior");
}

} // namespace piso
