#include "src/os/process.hh"

#include <type_traits>

#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

const char *
procStateName(ProcState s)
{
    switch (s) {
      case ProcState::Embryo:
        return "embryo";
      case ProcState::Ready:
        return "ready";
      case ProcState::Running:
        return "running";
      case ProcState::Blocked:
        return "blocked";
      case ProcState::Exited:
        return "exited";
    }
    return "?";
}

Process::Process(Pid pid, SpuId spu, JobId job, std::string name,
                 std::unique_ptr<Behavior> behavior, Rng rng)
    : pid_(pid), spu_(spu), job_(job), name_(std::move(name)),
      behavior_(std::move(behavior)), rng_(rng)
{
    if (!behavior_)
        PISO_FATAL("process '", name_, "' created without a behavior");
}

namespace {

void
saveAction(CkptWriter &w, const Action &a)
{
    w.u8(static_cast<std::uint8_t>(a.index()));
    std::visit(
        [&w](const auto &act) {
            using T = std::decay_t<decltype(act)>;
            if constexpr (std::is_same_v<T, ComputeAction>) {
                w.time(act.duration);
            } else if constexpr (std::is_same_v<T, ReadAction>) {
                w.i64(act.file);
                w.u64(act.offset);
                w.u64(act.bytes);
            } else if constexpr (std::is_same_v<T, WriteAction>) {
                w.i64(act.file);
                w.u64(act.offset);
                w.u64(act.bytes);
                w.boolean(act.sync);
            } else if constexpr (std::is_same_v<T, GrowMemAction>) {
                w.u64(act.pages);
            } else if constexpr (std::is_same_v<T, ShrinkMemAction>) {
                w.u64(act.pages);
            } else if constexpr (std::is_same_v<T, SleepAction>) {
                w.time(act.duration);
            } else if constexpr (std::is_same_v<T, BarrierAction>) {
                w.i64(act.barrier);
                w.boolean(act.spin);
            } else if constexpr (std::is_same_v<T, LockAction>) {
                w.i64(act.lock);
                w.boolean(act.exclusive);
                w.time(act.hold);
            } else if constexpr (std::is_same_v<T, SendAction>) {
                w.u64(act.bytes);
            } else {
                static_assert(std::is_same_v<T, ExitAction>);
            }
        },
        a);
}

Action
loadAction(CkptReader &r)
{
    const std::uint8_t kind = r.u8();
    switch (kind) {
      case 0: {
        ComputeAction a;
        a.duration = r.time();
        return a;
      }
      case 1: {
        ReadAction a;
        a.file = static_cast<FileId>(r.i64());
        a.offset = r.u64();
        a.bytes = r.u64();
        return a;
      }
      case 2: {
        WriteAction a;
        a.file = static_cast<FileId>(r.i64());
        a.offset = r.u64();
        a.bytes = r.u64();
        a.sync = r.boolean();
        return a;
      }
      case 3: {
        GrowMemAction a;
        a.pages = r.u64();
        return a;
      }
      case 4: {
        ShrinkMemAction a;
        a.pages = r.u64();
        return a;
      }
      case 5: {
        SleepAction a;
        a.duration = r.time();
        return a;
      }
      case 6: {
        BarrierAction a;
        a.barrier = static_cast<int>(r.i64());
        a.spin = r.boolean();
        return a;
      }
      case 7: {
        LockAction a;
        a.lock = static_cast<int>(r.i64());
        a.exclusive = r.boolean();
        a.hold = r.time();
        return a;
      }
      case 8: {
        SendAction a;
        a.bytes = r.u64();
        return a;
      }
      case 9:
        return ExitAction{};
      default:
        throw ConfigError("checkpoint image rejected: unknown action "
                          "kind " + std::to_string(kind));
    }
}

} // namespace

void
Process::save(CkptWriter &w) const
{
    w.u8(static_cast<std::uint8_t>(state_));
    rng_.save(w);
    behavior_->save(w);

    w.f64(recentCpu());  // fold pending decay: images carry the value
    w.f64(nice);
    w.i64(runningOn);
    w.i64(lastRanOn);
    w.time(sliceUsed);
    w.time(readySince);

    w.time(computeRemaining);
    w.time(segmentStart);
    w.boolean(segmentFaults);
    w.i64(pendingIo);
    w.i64(lockHeld);
    w.boolean(pendingAction.has_value());
    if (pendingAction)
        saveAction(w, *pendingAction);
    w.boolean(spinning);
    w.boolean(ioFailed);

    w.u64(workingSet);
    w.u64(resident);
    w.u64(everTouched);
    w.f64(dirtyFraction);
    w.time(touchInterval);
    w.time(growInterval);

    w.time(startTime);
    w.time(endTime);
    w.time(cpuTime);
    w.time(blockedTime);
    w.time(lastBlockStart);
    w.u64(zeroFillFaults);
    w.u64(refaults);
    w.u64(diskReads);
    w.u64(diskWrites);
}

void
Process::load(CkptReader &r)
{
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(ProcState::Exited)) {
        throw ConfigError("checkpoint image rejected: unknown process "
                          "state " + std::to_string(state));
    }
    state_ = static_cast<ProcState>(state);
    rng_.load(r);
    behavior_->load(r);

    setRecentCpu(r.f64());
    nice = r.f64();
    runningOn = static_cast<CpuId>(r.i64());
    lastRanOn = static_cast<CpuId>(r.i64());
    sliceUsed = r.time();
    readySince = r.time();

    computeRemaining = r.time();
    segmentStart = r.time();
    segmentFaults = r.boolean();
    pendingIo = static_cast<int>(r.i64());
    lockHeld = static_cast<int>(r.i64());
    if (r.boolean())
        pendingAction = loadAction(r);
    else
        pendingAction.reset();
    spinning = r.boolean();
    ioFailed = r.boolean();

    segmentEvent = kNoEvent;
    startEvent = kNoEvent;
    wakeEvent = kNoEvent;

    workingSet = r.u64();
    resident = r.u64();
    everTouched = r.u64();
    dirtyFraction = r.f64();
    touchInterval = r.time();
    growInterval = r.time();

    startTime = r.time();
    endTime = r.time();
    cpuTime = r.time();
    blockedTime = r.time();
    lastBlockStart = r.time();
    zeroFillFaults = r.u64();
    refaults = r.u64();
    diskReads = r.u64();
    diskWrites = r.u64();
}

} // namespace piso
