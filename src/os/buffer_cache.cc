#include "src/os/buffer_cache.hh"

#include <algorithm>

#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

std::uint64_t
BufferCache::hashKey(const BlockKey &key)
{
    // Mix file and block, then a splitmix64-style finalizer; the low
    // bits must be well distributed because the table is a power of
    // two and probing is linear.
    std::uint64_t x =
        key.block * 0x9e3779b97f4a7c15ull +
        (static_cast<std::uint64_t>(
             static_cast<std::uint32_t>(key.file)) *
         0xc2b2ae3d27d4eb4full);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

std::size_t
BufferCache::probe(const BlockKey &key) const
{
    std::size_t pos = hashKey(key) & indexMask_;
    while (index_[pos].key.file != kNoFile) {
        if (index_[pos].key == key)
            return pos;
        pos = (pos + 1) & indexMask_;
    }
    return pos;
}

void
BufferCache::ensureIndexCapacity()
{
    if (!index_.empty() && (size_ + 1) * 4 <= index_.size() * 3)
        return;

    const std::size_t newCap = index_.empty() ? 64 : index_.size() * 2;
    std::vector<IndexEntry> old = std::move(index_);
    index_.assign(newCap, IndexEntry{});
    indexMask_ = newCap - 1;
    for (const IndexEntry &e : old) {
        if (e.key.file == kNoFile)
            continue;
        std::size_t pos = hashKey(e.key) & indexMask_;
        while (index_[pos].key.file != kNoFile)
            pos = (pos + 1) & indexMask_;
        index_[pos] = e;
    }
}

void
BufferCache::eraseIndexAt(std::size_t pos)
{
    // Backward-shift deletion: pull displaced entries into the hole so
    // probe chains never need tombstones.
    std::size_t hole = pos;
    std::size_t next = (hole + 1) & indexMask_;
    while (index_[next].key.file != kNoFile) {
        const std::size_t home = hashKey(index_[next].key) & indexMask_;
        // Movable iff its home slot is outside the cyclic range
        // (hole, next] — i.e. probing from home reaches the hole
        // before (or at) its current position.
        if (((next - home) & indexMask_) >= ((next - hole) & indexMask_)) {
            index_[hole] = index_[next];
            hole = next;
        }
        next = (next + 1) & indexMask_;
    }
    index_[hole] = IndexEntry{};
}

void
BufferCache::lruUnlink(CacheBlock &blk)
{
    PISO_CHECK(blk.lruPrev != kNullSlot || lruHead_ == blk.slabIndex,
               "LRU unlink of a block that is not on the list (slot ",
               blk.slabIndex, ")");
    if (blk.lruPrev != kNullSlot)
        slab_[blk.lruPrev].lruNext = blk.lruNext;
    else
        lruHead_ = blk.lruNext;
    if (blk.lruNext != kNullSlot)
        slab_[blk.lruNext].lruPrev = blk.lruPrev;
    else
        lruTail_ = blk.lruPrev;
}

void
BufferCache::lruPushFront(CacheBlock &blk)
{
    blk.lruPrev = kNullSlot;
    blk.lruNext = lruHead_;
    if (lruHead_ != kNullSlot)
        slab_[lruHead_].lruPrev = blk.slabIndex;
    else
        lruTail_ = blk.slabIndex;
    lruHead_ = blk.slabIndex;
}

CacheBlock *
BufferCache::find(const BlockKey &key)
{
    if (index_.empty())
        return nullptr;
    const std::size_t pos = probe(key);
    if (index_[pos].key.file == kNoFile)
        return nullptr;
    return &slab_[index_[pos].slot];
}

CacheBlock &
BufferCache::insert(const BlockKey &key, SpuId owner, bool valid)
{
    ensureIndexCapacity();
    const std::size_t pos = probe(key);
    PISO_INVARIANT(index_[pos].key.file == kNoFile,
                   "duplicate cache insert for file ", key.file,
                   " block ", key.block);

    std::uint32_t slot;
    if (!freeSlab_.empty()) {
        slot = freeSlab_.back();
        freeSlab_.pop_back();
    } else {
        slot = static_cast<std::uint32_t>(slab_.size());
        slab_.emplace_back();
    }
    index_[pos] = IndexEntry{key, slot};

    CacheBlock &blk = slab_[slot];
    blk.key = key;
    blk.valid = valid;
    blk.dirty = false;
    blk.flushing = false;
    blk.owner = owner;
    blk.waiters.clear();
    blk.slabIndex = slot;
    lruPushFront(blk);
    ++perSpu_[owner];
    ++size_;
    return blk;
}

void
BufferCache::touch(CacheBlock &blk)
{
    lruUnlink(blk);
    lruPushFront(blk);
}

void
BufferCache::setOwner(CacheBlock &blk, SpuId owner)
{
    if (blk.owner == owner)
        return;
    --perSpu_[blk.owner];
    blk.owner = owner;
    ++perSpu_[owner];
}

void
BufferCache::remove(const BlockKey &key)
{
    PISO_INVARIANT(!index_.empty(), "removing uncached block");
    const std::size_t pos = probe(key);
    PISO_INVARIANT(index_[pos].key.file != kNoFile,
                   "removing uncached block");

    CacheBlock &blk = slab_[index_[pos].slot];
    PISO_INVARIANT(blk.waiters.empty(),
                   "removing a block with waiters");
    PISO_CHECK(blk.key == key,
               "cache index slot disagrees with its slab block (file ",
               key.file, " block ", key.block, ")");
    if (blk.dirty)
        --dirty_;
    --perSpu_[blk.owner];
    lruUnlink(blk);
    freeSlab_.push_back(blk.slabIndex);
    eraseIndexAt(pos);
    --size_;
    // Scrub the freed block so slab scans (forEachDirty) skip it.
    blk.key = BlockKey{};
    blk.valid = false;
    blk.dirty = false;
    blk.flushing = false;
    blk.owner = kNoSpu;
}

bool
BufferCache::stealClean(SpuId victim, SpuId &owner)
{
    // Walk from least-recently-used towards the front.
    for (std::uint32_t idx = lruTail_; idx != kNullSlot;
         idx = slab_[idx].lruPrev) {
        CacheBlock &blk = slab_[idx];
        if (!blk.valid || blk.dirty || blk.flushing)
            continue;
        if (victim != kNoSpu && blk.owner != victim)
            continue;
        owner = blk.owner;
        const BlockKey key = blk.key; // remove() scrubs blk.key
        remove(key);
        return true;
    }
    return false;
}

void
BufferCache::markValid(CacheBlock &blk)
{
    blk.valid = true;
    auto waiters = std::move(blk.waiters);
    blk.waiters.clear();
    for (auto &fn : waiters)
        fn();
}

void
BufferCache::markDirty(CacheBlock &blk)
{
    if (!blk.dirty) {
        blk.dirty = true;
        ++dirty_;
    }
}

void
BufferCache::markClean(CacheBlock &blk)
{
    if (blk.dirty) {
        blk.dirty = false;
        --dirty_;
    }
    blk.flushing = false;
}

std::size_t
BufferCache::pagesOf(SpuId spu) const
{
    const std::size_t *count = perSpu_.find(spu);
    return count ? *count : 0;
}

void
BufferCache::forEachDirty(const std::function<void(CacheBlock &)> &fn)
{
    // Collect and sort so callers see ascending key order — flush
    // clustering and first-dirty-victim selection depend on it.
    std::vector<std::pair<BlockKey, std::uint32_t>> dirty;
    dirty.reserve(dirty_);
    for (const CacheBlock &blk : slab_) {
        if (blk.valid && blk.dirty && !blk.flushing)
            dirty.emplace_back(blk.key, blk.slabIndex);
    }
    std::sort(dirty.begin(), dirty.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    for (const auto &[key, slot] : dirty)
        fn(slab_[slot]);
}

void
BufferCache::save(CkptWriter &w) const
{
    for (const CacheBlock &blk : slab_) {
        if (!blk.waiters.empty()) {
            throw InvariantError(
                "buffer cache has a block with read waiters at "
                "checkpoint time (not I/O-quiescent)");
        }
        if (blk.flushing) {
            throw InvariantError(
                "buffer cache has a flushing block at checkpoint "
                "time (not I/O-quiescent)");
        }
    }

    w.u64(slab_.size());
    for (const CacheBlock &blk : slab_) {
        w.i64(blk.key.file);
        w.u64(blk.key.block);
        w.boolean(blk.valid);
        w.boolean(blk.dirty);
        w.i64(blk.owner);
        w.u32(blk.slabIndex);
        w.u32(blk.lruPrev);
        w.u32(blk.lruNext);
    }
    w.u64(freeSlab_.size());
    for (std::uint32_t slot : freeSlab_)
        w.u32(slot);
    w.u64(index_.size());
    for (const IndexEntry &e : index_) {
        w.i64(e.key.file);
        w.u64(e.key.block);
        w.u32(e.slot);
    }
    w.u64(indexMask_);
    w.u32(lruHead_);
    w.u32(lruTail_);
    w.u64(size_);
    w.u64(dirty_);
    perSpu_.saveTable(w, [](CkptWriter &wr, const std::size_t &n) {
        wr.u64(n);
    });
}

void
BufferCache::load(CkptReader &r)
{
    const std::uint64_t slabCount = r.u64();
    slab_.clear();
    for (std::uint64_t i = 0; i < slabCount; ++i) {
        CacheBlock blk;
        blk.key.file = static_cast<FileId>(r.i64());
        blk.key.block = r.u64();
        blk.valid = r.boolean();
        blk.dirty = r.boolean();
        blk.flushing = false;
        blk.owner = static_cast<SpuId>(r.i64());
        blk.slabIndex = r.u32();
        blk.lruPrev = r.u32();
        blk.lruNext = r.u32();
        slab_.push_back(std::move(blk));
    }
    const std::uint64_t freeCount = r.u64();
    freeSlab_.clear();
    freeSlab_.reserve(freeCount);
    for (std::uint64_t i = 0; i < freeCount; ++i)
        freeSlab_.push_back(r.u32());
    const std::uint64_t indexCount = r.u64();
    index_.clear();
    index_.reserve(indexCount);
    for (std::uint64_t i = 0; i < indexCount; ++i) {
        IndexEntry e;
        e.key.file = static_cast<FileId>(r.i64());
        e.key.block = r.u64();
        e.slot = r.u32();
        index_.push_back(e);
    }
    indexMask_ = r.u64();
    lruHead_ = r.u32();
    lruTail_ = r.u32();
    size_ = r.u64();
    dirty_ = r.u64();
    perSpu_.loadTable(r, [](CkptReader &rd, std::size_t &n) {
        n = rd.u64();
    });

    for (std::uint32_t slot : freeSlab_) {
        if (slot >= slab_.size())
            throw ConfigError("checkpoint image rejected: buffer-cache "
                              "free-slab slot out of range");
    }
    for (const IndexEntry &e : index_) {
        if (e.slot != kNullSlot && e.slot >= slab_.size())
            throw ConfigError("checkpoint image rejected: buffer-cache "
                              "index slot out of range");
    }
    if (index_.empty() ? indexMask_ != 0
                       : indexMask_ + 1 != index_.size())
        throw ConfigError("checkpoint image rejected: buffer-cache "
                          "index mask disagrees with index size");
}

} // namespace piso
