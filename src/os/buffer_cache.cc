#include "src/os/buffer_cache.hh"

#include "src/sim/log.hh"

namespace piso {

CacheBlock *
BufferCache::find(const BlockKey &key)
{
    auto it = blocks_.find(key);
    return it == blocks_.end() ? nullptr : &it->second;
}

CacheBlock &
BufferCache::insert(const BlockKey &key, SpuId owner, bool valid)
{
    auto [it, inserted] = blocks_.try_emplace(key);
    if (!inserted)
        PISO_PANIC("duplicate cache insert for file ", key.file,
                   " block ", key.block);
    CacheBlock &blk = it->second;
    blk.key = key;
    blk.owner = owner;
    blk.valid = valid;
    lru_.push_front(key);
    blk.lruPos = lru_.begin();
    ++perSpu_[owner];
    return blk;
}

void
BufferCache::touch(CacheBlock &blk)
{
    lru_.erase(blk.lruPos);
    lru_.push_front(blk.key);
    blk.lruPos = lru_.begin();
}

void
BufferCache::setOwner(CacheBlock &blk, SpuId owner)
{
    if (blk.owner == owner)
        return;
    --perSpu_[blk.owner];
    blk.owner = owner;
    ++perSpu_[owner];
}

void
BufferCache::remove(const BlockKey &key)
{
    auto it = blocks_.find(key);
    if (it == blocks_.end())
        PISO_PANIC("removing uncached block");
    CacheBlock &blk = it->second;
    if (!blk.waiters.empty())
        PISO_PANIC("removing a block with waiters");
    if (blk.dirty)
        --dirty_;
    --perSpu_[blk.owner];
    lru_.erase(blk.lruPos);
    blocks_.erase(it);
}

bool
BufferCache::stealClean(SpuId victim, SpuId &owner)
{
    // Walk from least-recently-used towards the front.
    for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
        CacheBlock *blk = find(*it);
        if (!blk)
            PISO_PANIC("LRU entry without a block");
        if (!blk->valid || blk->dirty || blk->flushing)
            continue;
        if (victim != kNoSpu && blk->owner != victim)
            continue;
        owner = blk->owner;
        remove(blk->key);
        return true;
    }
    return false;
}

void
BufferCache::markValid(CacheBlock &blk)
{
    blk.valid = true;
    auto waiters = std::move(blk.waiters);
    blk.waiters.clear();
    for (auto &fn : waiters)
        fn();
}

void
BufferCache::markDirty(CacheBlock &blk)
{
    if (!blk.dirty) {
        blk.dirty = true;
        ++dirty_;
    }
}

void
BufferCache::markClean(CacheBlock &blk)
{
    if (blk.dirty) {
        blk.dirty = false;
        --dirty_;
    }
    blk.flushing = false;
}

std::size_t
BufferCache::pagesOf(SpuId spu) const
{
    auto it = perSpu_.find(spu);
    return it == perSpu_.end() ? 0 : it->second;
}

void
BufferCache::forEachDirty(const std::function<void(CacheBlock &)> &fn)
{
    for (auto &[key, blk] : blocks_) {
        if (blk.valid && blk.dirty && !blk.flushing)
            fn(blk);
    }
}

} // namespace piso
