#ifndef PISO_OS_FILESYSTEM_HH
#define PISO_OS_FILESYSTEM_HH

/**
 * @file
 * A minimal extent-based file system layout.
 *
 * The disk experiments depend on *where* data sits: large files are
 * contiguous ("the sectors of a single file are often laid out
 * contiguously", Section 3.3), so a big copy can monopolise a C-SCAN
 * disk; pmake touches many small files scattered across the disk plus
 * one repeatedly-rewritten metadata sector. This module provides just
 * enough layout to reproduce those patterns: contiguous or scattered
 * extent allocation and a metadata sector per file.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/checkpoint.hh"
#include "src/sim/ids.hh"
#include "src/sim/random.hh"

namespace piso {

/** Placement policy for a new file's extent. */
enum class FilePlacement
{
    Sequential,  //!< next-fit after the previous allocation (contiguous
                 //!< stream of allocations packs together)
    Scattered,   //!< pseudo-random position on the disk (small source
                 //!< files spread around, like an aged file system)
};

/** One file: a single contiguous extent plus a metadata sector. */
struct FileInfo
{
    FileId id = kNoFile;
    std::string name;
    DiskId disk = 0;
    std::uint64_t startSector = 0;
    std::uint64_t sectors = 0;
    std::uint64_t metadataSector = 0;
    std::uint64_t bytes = 0;
};

/**
 * Extent allocator and file table for all disks in the machine.
 * Blocks are fixed-size (default 4 KB = 8 sectors of 512 B).
 */
class FileSystem
{
  public:
    /**
     * @param sectorBytes Disk sector size (must match the disk model).
     * @param blockBytes  File-system block size.
     * @param seed        Seed for scattered placement.
     */
    FileSystem(std::uint32_t sectorBytes = 512,
               std::uint32_t blockBytes = 4096,
               std::uint64_t seed = 12345);

    /** Declare a disk and its capacity; reserves a small metadata zone
     *  at the front. Must be called before creating files on it. */
    void addDisk(DiskId disk, std::uint64_t totalSectors);

    /**
     * Create a file of @p bytes on @p disk.
     * @return the new file's id.
     */
    FileId createFile(std::string name, DiskId disk, std::uint64_t bytes,
                      FilePlacement placement = FilePlacement::Sequential);

    /**
     * Reserve a raw extent (e.g. per-SPU swap space) of @p bytes.
     * Returned as a FileInfo with no metadata sector semantics.
     */
    FileId createExtent(std::string name, DiskId disk, std::uint64_t bytes,
                        FilePlacement placement = FilePlacement::Sequential);

    const FileInfo &file(FileId id) const;

    std::uint32_t blockBytes() const { return blockBytes_; }
    std::uint32_t sectorsPerBlock() const { return sectorsPerBlock_; }

    /** Number of blocks spanned by [offset, offset+bytes) in @p id. */
    std::uint64_t blockCount(FileId id, std::uint64_t offset,
                             std::uint64_t bytes) const;

    /** First block index covering @p offset. */
    std::uint64_t blockOf(std::uint64_t offset) const;

    /** Absolute disk sector of block @p blockNo of file @p id. */
    std::uint64_t blockSector(FileId id, std::uint64_t blockNo) const;

    /** Free sectors remaining on @p disk. */
    std::uint64_t freeSectors(DiskId disk) const;

    /** @name Checkpoint — full file table, allocator pointers and the
     *  scattered-placement RNG (files are created at run time, so the
     *  table cannot be replayed from configuration alone). */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r);
    /// @}

  private:
    struct DiskSpace
    {
        std::uint64_t totalSectors = 0;
        std::uint64_t nextFree = 0;       //!< next-fit pointer
        std::uint64_t nextMetadata = 0;   //!< metadata zone pointer
        std::uint64_t metadataEnd = 0;
        std::uint64_t allocated = 0;
    };

    FileId allocate(std::string name, DiskId disk, std::uint64_t bytes,
                    FilePlacement placement, bool withMetadata);

    // piso-lint: allow(checkpoint-field-coverage) -- geometry
    // configuration, identical after deterministic setup replay.
    std::uint32_t sectorBytes_;
    // piso-lint: allow(checkpoint-field-coverage) -- geometry
    // configuration, identical after deterministic setup replay.
    std::uint32_t blockBytes_;
    // piso-lint: allow(checkpoint-field-coverage) -- derived from the
    // two geometry fields above at construction.
    std::uint32_t sectorsPerBlock_;
    Rng rng_;
    std::map<DiskId, DiskSpace> disks_;
    std::vector<FileInfo> files_;
};

} // namespace piso

#endif // PISO_OS_FILESYSTEM_HH
