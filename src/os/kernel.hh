#ifndef PISO_OS_KERNEL_HH
#define PISO_OS_KERNEL_HH

/**
 * @file
 * The simulated operating-system kernel.
 *
 * The Kernel is the orchestrator: it interprets process Actions
 * (compute, file I/O, memory growth, barriers, locks), implements the
 * page-fault and reclaim paths, runs the pageout and bdflush daemons,
 * and drives the CPU scheduler as its SchedClient. Everything
 * policy-specific (which scheduler, which disk scheduler, who moves
 * the allowed memory levels) is plugged in from outside, so the same
 * kernel runs the SMP, Quota, and PIso schemes.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/machine/disk.hh"
#include "src/machine/memory.hh"
#include "src/machine/network.hh"
#include "src/machine/numa.hh"
#include "src/os/buffer_cache.hh"
#include "src/os/filesystem.hh"
#include "src/os/locks.hh"
#include "src/os/process.hh"
#include "src/os/scheduler.hh"
#include "src/os/vm.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/random.hh"
#include "src/sim/stats.hh"

namespace piso {

/** Tunables of the OS substrate. */
struct KernelConfig
{
    /** CPU cost of servicing a zero-fill (first-touch) page fault. */
    Time zeroFillCost = 60 * kUs;

    /** CPU cost per file block copied between user and cache buffers
     *  on reads and writes. */
    Time copyCostPerBlock = 10 * kUs;

    /**
     * Cache-affinity penalty (Section 3.1's "hidden costs to
     * reallocating CPUs, such as cache pollution"): extra compute
     * charged when a process resumes on a different CPU than it last
     * used, or on a CPU whose last occupant belonged to another SPU.
     * 0 disables the model (the default; the paper experiments do not
     * quantify it — see bench/ablation_loan_holdoff).
     */
    Time cacheAffinityCost = 0;

    /** Period of the delayed-write flush daemon. */
    Time bdflushPeriod = kSec;

    /** Period of the pageout daemon. */
    Time pageoutPeriod = 250 * kMs;

    /** Max pages the pageout daemon reclaims per SPU per cycle. */
    std::uint64_t pageoutBatch = 256;

    /** Blocks prefetched ahead of a sequential reader. */
    std::uint32_t readAheadBlocks = 16;

    /** Largest single disk request (sectors); larger runs split. */
    std::uint32_t maxIoSectors = 128;

    /** Dirty-block fraction of total memory that triggers an
     *  immediate flush. */
    double dirtyHighWater = 0.20;

    /** Outstanding kernel-generated write sectors per disk above which
     *  writers are throttled (blocked until half-drained). */
    std::uint64_t writeThrottleSectors = 4096;

    /** Pages of swap space auto-reserved per SPU on first fault. */
    std::uint64_t swapExtentPages = 8192;

    /**
     * SMP-scheme behaviour: the pageout daemon maintains the free
     * reserve by stealing from the largest users (global page
     * replacement). Off for Quota/PIso, where the daemon only
     * enforces per-SPU allowed levels.
     */
    bool globalReplacement = false;

    /**
     * Priority inheritance on kernel locks (Section 3.4 / [SRL90]): a
     * process blocking on a semaphore transfers its priority to the
     * holder until release, so a starved holder cannot stall a
     * high-priority waiter indefinitely.
     */
    bool lockPriorityInheritance = true;

    /** @name Fault tolerance (I/O path) */
    /// @{
    /** A request outstanding this long is declared lost and handled
     *  like a failed completion (0 disables the watchdog). */
    Time ioTimeout = 10 * kSec;

    /** Failed or timed-out requests are reissued up to this many
     *  times before the I/O is abandoned. */
    int ioRetryLimit = 3;

    /** Delay before the first reissue; doubles on every further
     *  retry (exponential backoff). */
    Time ioRetryBackoff = 20 * kMs;
    /// @}
};

/** Aggregate kernel statistics. */
struct KernelStats
{
    Counter zeroFills;
    Counter refaults;
    Counter pageoutWrites;    //!< pages written by reclaim
    Counter bdflushRequests;  //!< batched delayed-write requests
    Counter syncWriteRequests;
    Counter bypassWrites;     //!< writes that found no cache frame
    Counter readRequests;
    Counter readAheadRequests;
    Counter throttleStalls;
    Counter cacheHits;
    Counter cacheMisses;
    Counter affinityPenalties;
    Counter diskErrors;       //!< failed completions seen by the kernel
    Counter ioRetries;        //!< requests reissued after a failure
    Counter ioTimeouts;       //!< requests declared lost by the watchdog
    Counter failedIos;        //!< I/Os abandoned after the retry limit
    Counter lostWrites;       //!< dirty pages dropped (writeback failed)

    void
    save(CkptWriter &w) const
    {
        zeroFills.save(w);
        refaults.save(w);
        pageoutWrites.save(w);
        bdflushRequests.save(w);
        syncWriteRequests.save(w);
        bypassWrites.save(w);
        readRequests.save(w);
        readAheadRequests.save(w);
        throttleStalls.save(w);
        cacheHits.save(w);
        cacheMisses.save(w);
        affinityPenalties.save(w);
        diskErrors.save(w);
        ioRetries.save(w);
        ioTimeouts.save(w);
        failedIos.save(w);
        lostWrites.save(w);
    }

    void
    load(CkptReader &r)
    {
        zeroFills.load(r);
        refaults.load(r);
        pageoutWrites.load(r);
        bdflushRequests.load(r);
        syncWriteRequests.load(r);
        bypassWrites.load(r);
        readRequests.load(r);
        readAheadRequests.load(r);
        throttleStalls.load(r);
        cacheHits.load(r);
        cacheMisses.load(r);
        affinityPenalties.load(r);
        diskErrors.load(r);
        ioRetries.load(r);
        ioTimeouts.load(r);
        failedIos.load(r);
        lostWrites.load(r);
    }
};

/** Per-SPU fault and recovery counters (I/O path). */
struct SpuFaultStats
{
    Counter diskErrors;
    Counter ioRetries;
    Counter ioTimeouts;
    Counter failedOps;   //!< I/Os abandoned after the retry limit

    void
    save(CkptWriter &w) const
    {
        diskErrors.save(w);
        ioRetries.save(w);
        ioTimeouts.save(w);
        failedOps.save(w);
    }

    void
    load(CkptReader &r)
    {
        diskErrors.load(r);
        ioRetries.load(r);
        ioTimeouts.load(r);
        failedOps.load(r);
    }
};

/**
 * The OS kernel: action interpreter, memory manager, I/O path, and
 * daemons. One instance per simulated machine.
 */
class Kernel : public SchedClient
{
  public:
    /**
     * Wire the kernel to its machine and substrate. All references
     * must outlive the kernel. Registers itself as the scheduler's
     * client.
     */
    Kernel(EventQueue &events, VirtualMemory &vm, BufferCache &cache,
           FileSystem &fs, CpuScheduler &sched,
           std::vector<DiskDevice *> disks, Rng rng,
           KernelConfig config = {});

    Kernel(const Kernel &) = delete;
    Kernel &operator=(const Kernel &) = delete;

    /** @name Configuration (before start()) */
    /// @{
    /** Disk that holds @p spu's files and swap space (default 0). */
    void setSpuDisk(SpuId spu, DiskId disk);

    /** Attach the machine's network interface (optional; SendActions
     *  are rejected without one). Not owned. */
    void setNetwork(NetworkInterface *net) { net_ = net; }

    /** The attached network interface, or nullptr. */
    NetworkInterface *network() { return net_; }

    /** Attach the machine's NUMA/bus model (optional; zero-fill page
     *  touches then pay the domain latency). Not owned. */
    void setNuma(NumaModel *numa) { numa_ = numa; }

    /** The attached NUMA model, or nullptr. */
    NumaModel *numa() { return numa_; }

    /** Begin daemons and scheduler ticks. */
    void start();
    /// @}

    /** @name Process and synchronisation management */
    /// @{
    /**
     * Create a process in @p spu, becoming runnable at @p startAt.
     * The kernel owns the process.
     */
    Process *createProcess(SpuId spu, JobId job, std::string name,
                           std::unique_ptr<Behavior> behavior,
                           Time startAt = 0);

    /** Create a cyclic barrier of @p width parties.
     *  @return barrier id for BarrierAction. */
    int createBarrier(int width);

    /** Create a kernel lock. @return lock id for LockAction. */
    int createLock(bool readersWriter);

    LockTable &locks() { return locks_; }
    /// @}

    /** @name SchedClient interface (called by the CpuScheduler) */
    /// @{
    void startRunning(Process &p) override;
    void stopRunning(Process &p) override;
    /// @}

    /** @name Queries */
    /// @{
    /** Processes not yet exited. */
    std::size_t liveProcesses() const { return live_; }

    Process *process(Pid pid) const;

    const KernelStats &stats() const { return stats_; }

    /** Per-SPU fault/retry counters (empty entry if the SPU never hit
     *  a fault). */
    const SpuFaultStats &spuFaults(SpuId spu) const;

    /**
     * Backoff delay before retry number @p attempt (1-based): @p base
     * doubled per retry, i.e. base << (attempt - 1), with the shift
     * clamped so it cannot overflow. Pure — exposed for tests.
     */
    static Time retryBackoff(Time base, int attempt);

    VirtualMemory &vm() { return vm_; }
    FileSystem &fs() { return fs_; }
    BufferCache &cache() { return cache_; }
    EventQueue &events() { return events_; }
    CpuScheduler &scheduler() { return sched_; }
    DiskDevice &disk(DiskId d) { return *disks_.at(static_cast<std::size_t>(d)); }
    std::size_t diskCount() const { return disks_.size(); }
    /// @}

    /** Kick a flush of every dirty block (end-of-run sync). */
    void syncAll() { bdflush(); }

    /** True when no disk is busy or queued and no dirty block
     *  remains — the I/O system is fully drained. */
    bool ioIdle() const;

    /** @name Checkpoint
     *  save()/load() cover every mutable kernel structure except the
     *  pending events, which the Simulation re-schedules through the
     *  restore*() hooks using the descriptors it recorded (each hook
     *  re-creates one pending event with its original (when, seq)
     *  ordering key, so the restored heap pops identically). */
    /// @{
    /**
     * Throw InvariantError unless the I/O system is quiescent enough
     * to checkpoint: no disk or network activity, no flush backlog,
     * no throttled writers, no process waiting on I/O. Dirty cache
     * blocks are fine; in-flight ones are not.
     */
    void requireIoQuiescent() const;

    void save(CkptWriter &w) const;
    void load(CkptReader &r);

    /** Pid owning pending event @p id via its startEvent /
     *  segmentEvent / wakeEvent field; kNoPid when no process does. */
    Pid eventOwner(EventId id) const;

    void restoreProcStart(Pid pid, Time when, std::uint64_t seq);
    void restoreSegEnd(Pid pid, Time when, std::uint64_t seq);
    void restoreSleepWake(Pid pid, Time when, std::uint64_t seq);
    void restoreBdflush(Time when, std::uint64_t seq);
    void restorePageout(Time when, std::uint64_t seq);
    void restoreBdflushKick(Time when, std::uint64_t seq);
    /// @}

    /** Invoked whenever a process exits (job tracking). */
    // piso-lint: allow(checkpoint-field-coverage) -- callback wiring,
    // re-established by setup replay; not serialisable state.
    std::function<void(Process &)> onProcessExit;

  private:
    struct Barrier
    {
        int width = 0;
        std::vector<Process *> waiting;
    };

    /** Result of reclaiming one page from an SPU. */
    struct Reclaimed
    {
        bool found = false;
        bool dirty = false;
        SpuId from = kNoSpu;
        /** Where a dirty page must be written (file block for cache
         *  pages, swap space for anonymous pages). */
        DiskId disk = 0;
        std::uint64_t sector = 0;
    };

    /** Outcome of executing one action. */
    enum class Exec
    {
        Continue,  //!< completed instantly; fetch the next action
        Compute,   //!< computeRemaining was set; begin a segment
        Blocked,   //!< the process blocked (or exited)
    };

    /** @name Action interpretation */
    /// @{
    void advance(Process &p);
    void beginSegment(Process &p);
    void segmentEnd(Process &p);
    void chargeSegment(Process &p);
    Exec execute(Process &p, const Action &a);
    Exec doRead(Process &p, const ReadAction &a);
    Exec doWrite(Process &p, const WriteAction &a);
    Exec doBarrier(Process &p, const BarrierAction &a);
    /** Release one barrier waiter (blocked or spinning). */
    void releaseFromBarrier(Process &q);
    Exec doLock(Process &p, const LockAction &a);
    void doExit(Process &p);
    /// @}

    /** @name Memory management */
    /// @{
    Time sampleFaultTime(Process &p);
    void pageFault(Process &p);
    /**
     * Obtain a frame charged to @p p's SPU. Returns true when the
     * frame is available synchronously. Returns false when a dirty
     * page must be written first: the caller must block @p p, and
     * @p onGranted runs (with the charge already transferred) when
     * the writeback completes.
     */
    bool acquireFrame(Process &p, std::function<void()> onGranted);

    /** Reclaim one page from @p victim (clean-cache first, then anon,
     *  then dirty-cache). Does not touch the free pool: the caller
     *  transfers or releases the charge. */
    Reclaimed reclaimPage(SpuId victim);

    /** reclaimPage over a victim preference order starting at the
     *  VM's suggestion for @p requester. */
    Reclaimed reclaimAny(SpuId requester);

    /** Get a frame for a cache page without blocking: free pool, then
     *  clean-cache steal (own SPU, then any). kNoSpu return = failed. */
    bool frameForCache(SpuId spu);

    /** Sector to use for paging I/O of @p pages contiguous pages of
     *  @p spu (lazily reserves a swap extent on the SPU's disk; the
     *  location is clamped so the run stays inside the extent). */
    void swapLocation(SpuId spu, DiskId &disk, std::uint64_t &sector,
                      Rng &rng, std::uint64_t pages = 1);

    void pageoutDaemon();
    /** Write one reclaimed dirty page; runs @p done on completion. */
    void writeReclaimedPage(const Reclaimed &r, std::function<void()> done);
    /** Issue the daemon's dirty evictions as clustered swap writes. */
    void flushClusteredPageouts(
        const std::map<std::pair<SpuId, DiskId>, std::uint64_t> &dirty);
    static std::uint64_t pendingPageouts(
        const std::map<std::pair<SpuId, DiskId>, std::uint64_t> &dirty);
    /// @}

    /** @name I/O path */
    /// @{
    /**
     * In-flight state of one logical I/O under timeout/retry. Shared
     * between the completion lambda, the watchdog event, and retry
     * events; `attempt` tokens let late completions of a timed-out
     * attempt be recognised as stale and ignored.
     */
    struct IoCtx
    {
        DiskId disk = 0;
        DiskRequest req;  //!< template; onComplete is filled per attempt
        int attempt = 0;  //!< attempts issued so far
        bool settled = false;
        EventId timeoutEvent = kNoEvent;
        std::function<void(const DiskRequest &)> onSuccess;
        std::function<void()> onFail;
    };

    /**
     * Submit @p req to @p disk under the kernel's fault handling:
     * watchdog timeout, bounded retries with exponential backoff.
     * Exactly one of @p onSuccess / @p onFail eventually runs.
     */
    void submitIo(DiskId disk, DiskRequest req,
                  std::function<void(const DiskRequest &)> onSuccess,
                  std::function<void()> onFail);
    void issueIo(std::shared_ptr<IoCtx> ctx);
    void ioAttemptFailed(std::shared_ptr<IoCtx> ctx);

    /** Fail a process's outstanding logical I/O: the process dies at
     *  its next dispatch (failed-action outcome). */
    void failProcessIo(Process &p);

    /** Drop the failed read's in-flight cache blocks (waiters run,
     *  frames uncharged). */
    void dropFailedReadBlocks(const std::vector<BlockKey> &keys);

    void ioArrived(Process &p);
    void bdflush();
    void kickBdflush();
    void bdflushPeriodicHelper();
    void pageoutDaemonHelper();
    bool throttled(DiskId disk) const;
    void submitFlushWrite(DiskId disk, DiskRequest req);
    void wakeThrottled(DiskId disk);
    void maybeReadAhead(Process &p, FileId file, std::uint64_t endBlock);
    /// @}

    void blockProcess(Process &p);
    void wakeProcess(Process &p);

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // each subsystem is imaged by Simulation in its own section.
    EventQueue &events_;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // each subsystem is imaged by Simulation in its own section.
    VirtualMemory &vm_;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // each subsystem is imaged by Simulation in its own section.
    BufferCache &cache_;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // each subsystem is imaged by Simulation in its own section.
    FileSystem &fs_;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // each subsystem is imaged by Simulation in its own section.
    CpuScheduler &sched_;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring; devices
    // are imaged by Simulation in machine order.
    std::vector<DiskDevice *> disks_;
    Rng rng_;
    // piso-lint: allow(checkpoint-field-coverage) -- kernel tunables,
    // identical after deterministic setup replay.
    KernelConfig config_;

    std::vector<std::unique_ptr<Process>> processes_;
    // piso-lint: allow(checkpoint-field-coverage) -- membership lists
    // are derived; load() rebuilds them from per-process state.
    SpuTable<std::vector<Process *>> spuProcs_;
    std::size_t live_ = 0;
    Pid nextPid_ = 1;

    std::vector<Barrier> barriers_;
    LockTable locks_;
    /** Original nice values of priority-boosted lock holders, by pid
     *  (pids, unlike pointers, keep any iteration deterministic). */
    DenseTable<Pid, double> boostedNice_;

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // the device is imaged by Simulation in its own section.
    NetworkInterface *net_ = nullptr;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // the model is imaged by Simulation in its own section.
    NumaModel *numa_ = nullptr;

    // piso-lint: allow(checkpoint-field-coverage) -- SPU-to-disk
    // placement is configuration, identical after setup replay.
    SpuTable<DiskId> spuDisk_;
    SpuTable<FileId> swapExtent_;

    /** Outstanding kernel-write sectors per disk (throttling). */
    // piso-lint: allow(checkpoint-field-coverage) -- checked zero by
    // requireIoQuiescent() before any save; nothing to image.
    DenseTable<DiskId, std::uint64_t> flushBacklog_;
    // piso-lint: allow(checkpoint-field-coverage) -- checked empty by
    // requireIoQuiescent() before any save; nothing to image.
    DenseTable<DiskId, std::vector<Process *>> throttleWaiters_;
    bool bdflushPending_ = false;

    /** Sequential-read detection: (pid, file) -> next expected block. */
    std::map<std::pair<Pid, FileId>, std::uint64_t> readCursor_;

    KernelStats stats_;
    mutable SpuTable<SpuFaultStats> spuFaults_;
    // piso-lint: allow(checkpoint-field-coverage) -- checkpoints are
    // only taken from running simulations; replay re-runs start().
    bool started_ = false;
};

} // namespace piso

#endif // PISO_OS_KERNEL_HH
