#include "src/os/cscan.hh"

#include "src/util/log.hh"

namespace piso {

std::size_t
CScanScheduler::pickAmong(
    const std::deque<DiskRequest> &queue, std::uint64_t headSector,
    const std::function<bool(const DiskRequest &)> &eligible)
{
    // The next request in the upward sweep: smallest startSector >=
    // head. If none, wrap to the smallest startSector overall.
    std::size_t best = queue.size();
    std::size_t bestWrap = queue.size();
    for (std::size_t i = 0; i < queue.size(); ++i) {
        const DiskRequest &r = queue[i];
        if (eligible && !eligible(r))
            continue;
        if (r.startSector >= headSector) {
            if (best == queue.size() ||
                r.startSector < queue[best].startSector) {
                best = i;
            }
        }
        if (bestWrap == queue.size() ||
            r.startSector < queue[bestWrap].startSector) {
            bestWrap = i;
        }
    }
    return best != queue.size() ? best : bestWrap;
}

std::size_t
CScanScheduler::pick(const std::deque<DiskRequest> &queue,
                     std::uint64_t headSector, Time)
{
    if (queue.empty())
        PISO_PANIC("C-SCAN asked to pick from an empty queue");
    return pickAmong(queue, headSector, nullptr);
}

} // namespace piso
