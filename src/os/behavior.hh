#ifndef PISO_OS_BEHAVIOR_HH
#define PISO_OS_BEHAVIOR_HH

/**
 * @file
 * Behavior: the program a simulated process executes.
 */

#include "src/os/action.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/random.hh"
#include "src/util/time.hh"

namespace piso {

class Process;

/** Read-only context handed to behaviours when they emit actions. */
struct BehaviorContext
{
    Time now;   //!< current simulated time
    Rng &rng;   //!< per-process random stream
};

/**
 * A supplier of Actions. The kernel calls next() each time the previous
 * action finishes; returning ExitAction ends the process.
 *
 * Implementations live in src/workload (pmake, Ocean, file copy, ...)
 * and in tests (scripted sequences).
 */
class Behavior
{
  public:
    virtual ~Behavior() = default;

    /** Produce the process's next action. */
    virtual Action next(Process &self, const BehaviorContext &ctx) = 0;

    /** @name Checkpoint — serialise only mutable cursor state; the
     *  behaviour object itself (scripts, parameters) is rebuilt by
     *  the deterministic setup replay. Default: stateless. */
    /// @{
    virtual void save(CkptWriter &) const {}
    virtual void load(CkptReader &) {}
    /// @}
};

} // namespace piso

#endif // PISO_OS_BEHAVIOR_HH
