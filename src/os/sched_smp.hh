#ifndef PISO_OS_SCHED_SMP_HH
#define PISO_OS_SCHED_SMP_HH

/**
 * @file
 * The baseline "SMP" scheduling policy (Table 2): one global run queue,
 * every CPU picks the highest-priority runnable process, no notion of
 * SPUs. This models unmodified IRIX 5.3 and provides unconstrained
 * sharing with no isolation.
 */

#include <list>

#include "src/os/scheduler.hh"

namespace piso {

/** Global-queue, priority-based scheduler (the paper's SMP scheme). */
class SmpScheduler : public CpuScheduler
{
  public:
    using CpuScheduler::CpuScheduler;

    /** Number of processes waiting in the global ready queue. */
    std::size_t readyCount() const { return ready_.size(); }

  protected:
    Process *selectNext(Cpu &cpu) override;
    void enqueueReady(Process *p) override;
    bool eligibleIdle(const Cpu &cpu, const Process *p) const override;

    void saveReady(CkptWriter &w) const override
    {
        w.u64(ready_.size());
        for (const Process *p : ready_)
            w.i64(p->pid());
    }

    void loadReady(CkptReader &r,
                   const std::function<Process *(Pid)> &byPid) override
    {
        ready_.clear();
        const std::uint64_t n = r.u64();
        for (std::uint64_t i = 0; i < n; ++i)
            ready_.push_back(byPid(static_cast<Pid>(r.i64())));
    }

  private:
    std::list<Process *> ready_;
};

} // namespace piso

#endif // PISO_OS_SCHED_SMP_HH
