#include "src/os/filesystem.hh"

#include "src/util/log.hh"

namespace piso {

FileSystem::FileSystem(std::uint32_t sectorBytes, std::uint32_t blockBytes,
                       std::uint64_t seed)
    : sectorBytes_(sectorBytes), blockBytes_(blockBytes), rng_(seed)
{
    if (sectorBytes_ == 0 || blockBytes_ == 0 ||
        blockBytes_ % sectorBytes_ != 0) {
        PISO_FATAL("block size ", blockBytes_,
                   " must be a multiple of sector size ", sectorBytes_);
    }
    sectorsPerBlock_ = blockBytes_ / sectorBytes_;
}

void
FileSystem::addDisk(DiskId disk, std::uint64_t totalSectors)
{
    if (disks_.count(disk))
        PISO_FATAL("disk ", disk, " already added to the file system");
    DiskSpace space;
    space.totalSectors = totalSectors;
    // Reserve ~0.2% at the front as the metadata zone (inodes,
    // directories) so metadata writes seek away from data extents.
    space.metadataEnd = std::max<std::uint64_t>(totalSectors / 512, 64);
    space.nextMetadata = 0;
    space.nextFree = space.metadataEnd;
    disks_[disk] = space;
}

FileId
FileSystem::allocate(std::string name, DiskId disk, std::uint64_t bytes,
                     FilePlacement placement, bool withMetadata)
{
    auto it = disks_.find(disk);
    if (it == disks_.end())
        PISO_FATAL("unknown disk ", disk, " for file '", name, "'");
    DiskSpace &space = it->second;

    std::uint64_t blocks = (bytes + blockBytes_ - 1) / blockBytes_;
    if (blocks == 0)
        blocks = 1;
    const std::uint64_t sectors = blocks * sectorsPerBlock_;

    std::uint64_t start;
    if (placement == FilePlacement::Scattered) {
        // Pseudo-random placement, retrying a few times on collision
        // with the next-fit frontier region.
        const std::uint64_t span = space.totalSectors - space.metadataEnd;
        if (sectors > span)
            PISO_FATAL("file '", name, "' larger than disk ", disk);
        start = space.metadataEnd +
                (rng_.uniformInt(span - sectors) / sectorsPerBlock_) *
                    sectorsPerBlock_;
    } else {
        if (space.nextFree + sectors > space.totalSectors)
            PISO_FATAL("disk ", disk, " out of space for '", name, "'");
        start = space.nextFree;
        space.nextFree += sectors;
    }
    space.allocated += sectors;

    FileInfo info;
    info.id = static_cast<FileId>(files_.size());
    info.name = std::move(name);
    info.disk = disk;
    info.startSector = start;
    info.sectors = sectors;
    info.bytes = bytes;
    if (withMetadata) {
        if (space.nextMetadata >= space.metadataEnd)
            space.nextMetadata = 0; // metadata sectors are reused
        info.metadataSector = space.nextMetadata++;
    }
    files_.push_back(info);
    return info.id;
}

FileId
FileSystem::createFile(std::string name, DiskId disk, std::uint64_t bytes,
                       FilePlacement placement)
{
    return allocate(std::move(name), disk, bytes, placement, true);
}

FileId
FileSystem::createExtent(std::string name, DiskId disk, std::uint64_t bytes,
                         FilePlacement placement)
{
    return allocate(std::move(name), disk, bytes, placement, false);
}

const FileInfo &
FileSystem::file(FileId id) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= files_.size())
        PISO_PANIC("unknown file id ", id);
    return files_[static_cast<std::size_t>(id)];
}

std::uint64_t
FileSystem::blockCount(FileId id, std::uint64_t offset,
                       std::uint64_t bytes) const
{
    const FileInfo &f = file(id);
    if (offset + bytes > f.sectors * sectorBytes_) {
        PISO_PANIC("access [", offset, ", +", bytes, ") beyond file '",
                   f.name, "'");
    }
    if (bytes == 0)
        return 0;
    const std::uint64_t first = offset / blockBytes_;
    const std::uint64_t last = (offset + bytes - 1) / blockBytes_;
    return last - first + 1;
}

std::uint64_t
FileSystem::blockOf(std::uint64_t offset) const
{
    return offset / blockBytes_;
}

std::uint64_t
FileSystem::blockSector(FileId id, std::uint64_t blockNo) const
{
    const FileInfo &f = file(id);
    const std::uint64_t sector =
        f.startSector + blockNo * sectorsPerBlock_;
    if (sector >= f.startSector + f.sectors)
        PISO_PANIC("block ", blockNo, " beyond file '", f.name, "'");
    return sector;
}

std::uint64_t
FileSystem::freeSectors(DiskId disk) const
{
    auto it = disks_.find(disk);
    if (it == disks_.end())
        PISO_FATAL("unknown disk ", disk);
    return it->second.totalSectors - it->second.nextFree;
}

void
FileSystem::save(CkptWriter &w) const
{
    rng_.save(w);
    w.u64(disks_.size());
    for (const auto &[id, space] : disks_) {
        w.i64(id);
        w.u64(space.totalSectors);
        w.u64(space.nextFree);
        w.u64(space.nextMetadata);
        w.u64(space.metadataEnd);
        w.u64(space.allocated);
    }
    w.u64(files_.size());
    for (const FileInfo &f : files_) {
        w.i64(f.id);
        w.str(f.name);
        w.i64(f.disk);
        w.u64(f.startSector);
        w.u64(f.sectors);
        w.u64(f.metadataSector);
        w.u64(f.bytes);
    }
}

void
FileSystem::load(CkptReader &r)
{
    rng_.load(r);
    const std::uint64_t diskCount = r.u64();
    disks_.clear();
    for (std::uint64_t i = 0; i < diskCount; ++i) {
        const DiskId id = static_cast<DiskId>(r.i64());
        DiskSpace space;
        space.totalSectors = r.u64();
        space.nextFree = r.u64();
        space.nextMetadata = r.u64();
        space.metadataEnd = r.u64();
        space.allocated = r.u64();
        disks_.emplace(id, space);
    }
    const std::uint64_t fileCount = r.u64();
    files_.clear();
    files_.reserve(fileCount);
    for (std::uint64_t i = 0; i < fileCount; ++i) {
        FileInfo f;
        f.id = static_cast<FileId>(r.i64());
        f.name = r.str();
        f.disk = static_cast<DiskId>(r.i64());
        f.startSector = r.u64();
        f.sectors = r.u64();
        f.metadataSector = r.u64();
        f.bytes = r.u64();
        files_.push_back(std::move(f));
    }
}

} // namespace piso
