#include "src/os/sched_smp.hh"

namespace piso {

Process *
SmpScheduler::selectNext(Cpu &)
{
    if (ready_.empty())
        return nullptr;
    policyIters_ += ready_.size();
    auto best = ready_.begin();
    for (auto it = std::next(ready_.begin()); it != ready_.end(); ++it) {
        if (higherPriority(*it, *best))
            best = it;
    }
    Process *p = *best;
    ready_.erase(best);
    return p;
}

void
SmpScheduler::enqueueReady(Process *p)
{
    ready_.push_back(p);
}

bool
SmpScheduler::eligibleIdle(const Cpu &, const Process *) const
{
    return true;
}

} // namespace piso
