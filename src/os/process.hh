#ifndef PISO_OS_PROCESS_HH
#define PISO_OS_PROCESS_HH

/**
 * @file
 * The simulated process: scheduling state, memory footprint, accounting.
 *
 * A Process is pure state; the Kernel and CpuScheduler drive it. Its
 * Behavior supplies what it does next.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "src/os/action.hh"
#include "src/os/behavior.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/** Life-cycle states. */
enum class ProcState : std::uint8_t
{
    Embryo,   //!< created, not yet started
    Ready,    //!< runnable, waiting for a CPU
    Running,  //!< on a CPU
    Blocked,  //!< waiting for I/O, memory, a barrier, a lock, or sleep
    Exited,   //!< done
};

/** Human-readable state name (for logs and tests). */
const char *procStateName(ProcState s);

/**
 * One schedulable process.
 *
 * Memory is modelled by counts: @ref workingSet is how many distinct
 * pages the process touches; @ref resident how many frames it holds;
 * @ref everTouched the high-water mark distinguishing first-touch
 * (zero-fill) faults from refaults that need a disk read.
 */
class Process
{
  public:
    Process(Pid pid, SpuId spu, JobId job, std::string name,
            std::unique_ptr<Behavior> behavior, Rng rng);

    Process(const Process &) = delete;
    Process &operator=(const Process &) = delete;

    Pid pid() const { return pid_; }
    SpuId spu() const { return spu_; }
    JobId job() const { return job_; }
    const std::string &name() const { return name_; }

    ProcState state() const { return state_; }
    void setState(ProcState s) { state_ = s; }

    Behavior &behavior() { return *behavior_; }
    Rng &rng() { return rng_; }

    /** @name Scheduling state (owned by the CpuScheduler) */
    /// @{
    /** Static priority bias added to recentCpu. */
    double nice = 0.0;
    /** CPU currently running this process (kNoCpu when not running). */
    CpuId runningOn = kNoCpu;
    /** CPU this process last executed on (cache affinity). */
    CpuId lastRanOn = kNoCpu;
    /** Time used in the current 30 ms slice. */
    Time sliceUsed = 0;
    /** When the process entered the ready queue (FIFO tie-break). */
    Time readySince = 0;
    /// @}

    /** @name Execution state (owned by the Kernel) */
    /// @{
    /** Remaining compute in the current ComputeAction. */
    Time computeRemaining = 0;
    /** Wall-clock start of the segment currently running on a CPU. */
    Time segmentStart = 0;
    /** Pending segment-end event while Running. */
    // piso-lint: allow(checkpoint-field-coverage) -- event ids are
    // imaged with the event queue; Kernel::restoreSegEnd re-links.
    EventId segmentEvent = kNoEvent;
    /** Pending process-start event while Embryo. */
    // piso-lint: allow(checkpoint-field-coverage) -- event ids are
    // imaged with the event queue; Kernel::restoreProcStart re-links.
    EventId startEvent = kNoEvent;
    /** Pending wake event while Blocked in a SleepAction. */
    // piso-lint: allow(checkpoint-field-coverage) -- event ids are
    // imaged with the event queue; Kernel::restoreSleepWake re-links.
    EventId wakeEvent = kNoEvent;
    /** True when the current segment will end in a page fault. */
    bool segmentFaults = false;
    /** Outstanding I/O operations this process is blocked on. */
    int pendingIo = 0;
    /** Lock to release when the current hold-compute finishes. */
    int lockHeld = -1;
    /** Action to retry on next advance (set when an action had to
     *  block before it could execute, e.g. write throttling). */
    std::optional<Action> pendingAction;
    /** Busy-waiting at a spin barrier (burning CPU until release). */
    bool spinning = false;
    /** An I/O this process depends on failed permanently (retries
     *  exhausted or disk dead); the kernel terminates the process at
     *  its next dispatch. */
    bool ioFailed = false;
    /// @}

    /** @name Memory model */
    /// @{
    std::uint64_t workingSet = 0;   //!< pages the process wants resident
    std::uint64_t resident = 0;     //!< frames currently held
    std::uint64_t everTouched = 0;  //!< first-touch high-water mark
    /** Probability an evicted page is dirty (needs writeback). */
    double dirtyFraction = 0.5;
    /** Mean compute time between page touches (refault-rate scale). */
    Time touchInterval = 3 * kMs;
    /** Mean compute time between first-touch (zero-fill) faults while
     *  the working set is still growing. */
    Time growInterval = 200 * kUs;
    /// @}

    /** @name Accounting */
    /// @{
    Time startTime = 0;       //!< when the process became runnable
    Time endTime = 0;         //!< when it exited
    Time cpuTime = 0;         //!< total CPU consumed
    Time blockedTime = 0;     //!< total time spent Blocked
    Time lastBlockStart = 0;
    std::uint64_t zeroFillFaults = 0;
    std::uint64_t refaults = 0;
    std::uint64_t diskReads = 0;
    std::uint64_t diskWrites = 0;
    /// @}

    /** @name Decayed recent CPU usage (lower means higher priority)
     *
     * The scheduler halves every process's usage once per decay
     * period. Rather than sweeping all processes eagerly, it bumps a
     * shared epoch counter and each process folds the missed halvings
     * in on first read (foldDecay). The multiply sequence is identical
     * to the eager sweep's, so the values are bit-exact either way;
     * an unbound process (no scheduler, or the eager-baseline loops)
     * never folds.
     */
    /// @{
    /** Attach this process to the scheduler's decay epoch. The
     *  process starts current: only future epoch bumps apply. */
    void
    bindDecayEpoch(const std::uint32_t *epoch)
    {
        decayEpochSrc_ = epoch;
        decayEpoch_ = epoch != nullptr ? *epoch : 0;
    }

    /** Apply any decay halvings this process has not seen yet. */
    void
    foldDecay() const
    {
        if (decayEpochSrc_ == nullptr ||
            decayEpoch_ == *decayEpochSrc_)
            return;
        if (recentCpu_ == 0.0) {
            decayEpoch_ = *decayEpochSrc_;
            return;
        }
        while (decayEpoch_ != *decayEpochSrc_) {
            recentCpu_ *= 0.5;
            ++decayEpoch_;
        }
    }

    /** Current (fully decayed) recent-usage value. */
    double
    recentCpu() const
    {
        foldDecay();
        return recentCpu_;
    }

    /** Overwrite the usage value (tests, checkpoint load). */
    void
    setRecentCpu(double v)
    {
        recentCpu_ = v;
        if (decayEpochSrc_ != nullptr)
            decayEpoch_ = *decayEpochSrc_;
    }

    /** Add one tick's worth of usage. */
    void
    chargeCpu(double seconds)
    {
        foldDecay();
        recentCpu_ += seconds;
    }

    /** Halve the usage in place (the eager-baseline sweep). */
    void scaleRecentCpu(double factor) { recentCpu_ *= factor; }
    /// @}

    /** Effective scheduling priority; smaller is better. */
    double priority() const { return nice + recentCpu(); }

    /** @name Checkpoint
     *  Serialises every mutable field except the pending EventIds
     *  (segmentEvent/startEvent/wakeEvent), which are re-established
     *  when the restore path re-schedules the pending events. */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r);
    /// @}

  private:
    // piso-lint: allow(checkpoint-field-coverage) -- identity assigned
    // by setup replay; the image cross-checks pid order instead.
    Pid pid_;
    // piso-lint: allow(checkpoint-field-coverage) -- placement is
    // configuration, identical after deterministic setup replay.
    SpuId spu_;
    // piso-lint: allow(checkpoint-field-coverage) -- job membership is
    // configuration, identical after deterministic setup replay.
    JobId job_;
    // piso-lint: allow(checkpoint-field-coverage) -- log label, fixed
    // at creation; identical after setup replay.
    std::string name_;
    std::unique_ptr<Behavior> behavior_;
    Rng rng_;
    ProcState state_ = ProcState::Embryo;

    // Lazily decayed usage: mutable so const readers (priority()
    // comparisons, save()) can fold pending halvings in.
    // piso-lint: allow(checkpoint-field-coverage) -- imaged through
    // recentCpu()/setRecentCpu(), which fold the pending decay in.
    mutable double recentCpu_ = 0.0;
    // piso-lint: allow(checkpoint-field-coverage) -- lazy-decay epoch
    // tag; setRecentCpu() resyncs it to the scheduler's epoch.
    mutable std::uint32_t decayEpoch_ = 0;
    // piso-lint: allow(checkpoint-field-coverage) -- wiring pointer to
    // the scheduler's epoch counter, re-bound by setup replay.
    const std::uint32_t *decayEpochSrc_ = nullptr;
};

} // namespace piso

#endif // PISO_OS_PROCESS_HH
