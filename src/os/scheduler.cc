#include "src/os/scheduler.hh"

#include <algorithm>
#include <cmath>

#include "src/util/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"

namespace piso {

CpuScheduler::CpuScheduler(EventQueue &events, int numCpus, Time tickPeriod,
                           Time timeSlice)
    : events_(events), tickPeriod_(tickPeriod), timeSlice_(timeSlice)
{
    if (numCpus < 1)
        PISO_FATAL("machine needs at least one CPU, got ", numCpus);
    if (tickPeriod_ == 0 || timeSlice_ == 0)
        PISO_FATAL("tick period and time slice must be non-zero");

    cpus_.resize(static_cast<std::size_t>(numCpus));
    for (int i = 0; i < numCpus; ++i)
        cpus_[static_cast<std::size_t>(i)].id = i;
}

void
CpuScheduler::start()
{
    if (!client_)
        PISO_FATAL("scheduler started without a client");
    lastDecay_ = events_.now();
    for (auto &c : cpus_)
        c.idleSince = events_.now();
    events_.scheduleAfter(tickPeriod_, [this] { tick(); }, "schedTick");
}

void
CpuScheduler::processCreated(Process *p)
{
    all_.push_back(p);
    // Eager-baseline processes stay unbound: the periodic sweep
    // multiplies them directly and foldDecay() is a no-op.
    if (!eagerLoops_)
        p->bindDecayEpoch(&decayEpoch_);
}

bool
CpuScheduler::higherPriority(const Process *a, const Process *b)
{
    if (a->priority() != b->priority())
        return a->priority() < b->priority();
    return a->readySince < b->readySince;
}

void
CpuScheduler::processReady(Process *p)
{
    if (p->state() == ProcState::Ready || p->state() == ProcState::Running)
        PISO_PANIC("processReady on ", procStateName(p->state()),
                   " process ", p->name());

    p->setState(ProcState::Ready);
    p->readySince = events_.now();

    // Prefer an idle CPU this process is eligible for. Scan home CPUs
    // implicitly: eligibleIdle() encodes the policy, and we prefer a
    // CPU whose home SPU matches to keep loans short.
    Cpu *fallback = nullptr;
    for (auto &c : cpus_) {
        if (!c.online || c.running || !eligibleIdle(c, p))
            continue;
        if (c.homeSpu == p->spu() || c.homeSpu == kNoSpu) {
            enqueueReady(p);
            dispatch(c);
            return;
        }
        if (!fallback)
            fallback = &c;
    }
    if (fallback) {
        enqueueReady(p);
        dispatch(*fallback);
        return;
    }

    enqueueReady(p);
    onReadyNoIdle(p);
}

void
CpuScheduler::freeCpu(Process *p, bool requeue)
{
    if (p->runningOn == kNoCpu)
        PISO_PANIC("freeing CPU of non-running process ", p->name());

    Cpu &c = cpus_.at(static_cast<std::size_t>(p->runningOn));
    const Time busy = events_.now() - c.lastDispatch;
    c.busyTime += busy;
    spuCpuTime_[p->spu()] += busy;

    c.running = nullptr;
    c.loaned = false;
    c.idleSince = events_.now();
    p->runningOn = kNoCpu;

    if (requeue)
        enqueueReady(p);
    dispatch(c);
}

void
CpuScheduler::processBlocked(Process *p)
{
    if (p->state() != ProcState::Running)
        PISO_PANIC("processBlocked on ", procStateName(p->state()),
                   " process ", p->name());
    p->setState(ProcState::Blocked);
    p->lastBlockStart = events_.now();
    freeCpu(p, false);
}

void
CpuScheduler::processExited(Process *p)
{
    if (p->state() != ProcState::Running)
        PISO_PANIC("processExited on ", procStateName(p->state()),
                   " process ", p->name());
    p->setState(ProcState::Exited);
    p->endTime = events_.now();
    // An exited process leaves the decay registry: settle the decay
    // it has seen, then detach so later epoch bumps no longer apply
    // (exactly what removal from the eager sweep's roster did).
    p->foldDecay();
    p->bindDecayEpoch(nullptr);
    all_.erase(std::remove(all_.begin(), all_.end(), p), all_.end());
    freeCpu(p, false);
}

void
CpuScheduler::dispatch(Cpu &cpu)
{
    if (cpu.running)
        PISO_PANIC("dispatch on busy cpu", cpu.id);
    if (!cpu.online)
        return;

    Process *p = selectNext(cpu);
    if (!p) {
        cpu.revokePending = false;
        return;
    }

    cpu.idleTime += events_.now() - cpu.idleSince;
    cpu.running = p;
    cpu.lastDispatch = events_.now();
    cpu.loaned = cpu.homeSpu != kNoSpu && p->spu() != cpu.homeSpu;
    if (!cpu.loaned)
        cpu.revokePending = false;

    PISO_TRACE(TraceCat::Sched, events_.now(), "dispatch ", p->name(),
               " on cpu", cpu.id, cpu.loaned ? " (loan)" : "");
    p->runningOn = cpu.id;
    p->setState(ProcState::Running);
    p->sliceUsed = 0;
    if (p->lastBlockStart != 0) {
        p->blockedTime += events_.now() - p->lastBlockStart;
        p->lastBlockStart = 0;
    }
    // The client reads cpu.lastSpu (previous cache occupant) inside
    // startRunning; update it afterwards — unless p already blocked
    // and a nested dispatch filled the CPU with someone else.
    client_->startRunning(*p);
    if (cpu.running == p)
        cpu.lastSpu = p->spu();
}

void
CpuScheduler::preemptCpu(Cpu &cpu)
{
    Process *p = cpu.running;
    if (!p)
        return;
    PISO_TRACE(TraceCat::Sched, events_.now(), "preempt ", p->name(),
               " on cpu", cpu.id);
    client_->stopRunning(*p);
    p->setState(ProcState::Ready);
    p->readySince = events_.now();
    freeCpu(p, true);
}

SpuId
CpuScheduler::currentOwner(const Cpu &cpu) const
{
    if (cpu.timeShares.empty())
        return cpu.homeSpu;
    const double pos =
        static_cast<double>(events_.now() % sharePeriod_) /
        static_cast<double>(sharePeriod_);
    double acc = 0.0;
    for (const auto &[spu, frac] : cpu.timeShares) {
        acc += frac;
        if (pos < acc)
            return spu;
    }
    return cpu.timeShares.back().first;
}

void
CpuScheduler::onReadyNoIdle(Process *)
{
}

void
CpuScheduler::policyTick()
{
}

void
CpuScheduler::tick()
{
    const Time now = events_.now();

    // Charge the tick to whoever is running (degrading priorities).
    for (auto &c : cpus_) {
        if (c.running) {
            c.running->chargeCpu(toSeconds(tickPeriod_));
            c.running->sliceUsed += tickPeriod_;
        }
    }

    // Decay recent usage by half every second, IRIX-style. The
    // default is O(1): bump the epoch and let each process fold the
    // halving in when its priority is next read — the same multiply
    // sequence, so values are bit-exact with the eager sweep.
    if (now - lastDecay_ >= decayPeriod_) {
        if (eagerLoops_) {
            policyIters_ += all_.size();
            for (auto *p : all_)
                p->scaleRecentCpu(0.5);
        } else {
            ++decayEpoch_;
        }
        lastDecay_ = now;
    }

    // Expired slices: round-robin among equal-priority processes. The
    // re-dispatch picks the best ready process, which may be the same
    // one if nothing better waits.
    for (auto &c : cpus_) {
        if (c.running && c.running->sliceUsed >= timeSlice_)
            preemptCpu(c);
    }

    policyTick();

    // Idle CPUs whose eligibility changed since they went idle (time
    // partition rotated, a loan hold-off expired) have no other event
    // to wake them: give them a dispatch chance every tick.
    for (auto &c : cpus_) {
        if (!c.running)
            dispatch(c);
    }

    events_.scheduleAfter(tickPeriod_, [this] { tick(); }, "schedTick");
}

Time
CpuScheduler::spuCpuTime(SpuId spu) const
{
    const Time *accrued = spuCpuTime_.find(spu);
    Time t = accrued ? *accrued : 0;
    // Include the in-flight portion of currently running processes.
    for (const auto &c : cpus_) {
        if (c.running && c.running->spu() == spu)
            t += events_.now() - c.lastDispatch;
    }
    return t;
}

Time
CpuScheduler::totalIdleTime() const
{
    Time t = 0;
    for (const auto &c : cpus_) {
        t += c.idleTime;
        if (!c.running && c.online)
            t += events_.now() - c.idleSince;
    }
    return t;
}

int
CpuScheduler::onlineCpus() const
{
    int n = 0;
    for (const auto &c : cpus_)
        n += c.online ? 1 : 0;
    return n;
}

void
CpuScheduler::setCpuOnline(CpuId cpuId, bool online)
{
    Cpu &c = cpus_.at(static_cast<std::size_t>(cpuId));
    if (c.online == online)
        return;
    if (online) {
        c.online = true;
        c.idleSince = events_.now();
        PISO_TRACE(TraceCat::Sched, events_.now(), "cpu", c.id,
                   " online");
        return;
    }
    // Close out the idle clock before the CPU stops being idle-capable,
    // then mark it offline so the dispatch from preemptCpu's freeCpu is
    // a no-op and the evicted process stays queued for the others.
    if (!c.running)
        c.idleTime += events_.now() - c.idleSince;
    c.online = false;
    c.homeSpu = kNoSpu;
    c.timeShares.clear();
    c.revokePending = false;
    PISO_TRACE(TraceCat::Sched, events_.now(), "cpu", c.id, " offline");
    if (c.running)
        preemptCpu(c);
}

int
CpuScheduler::takeCpusOffline(int count)
{
    int taken = 0;
    for (auto it = cpus_.rbegin();
         it != cpus_.rend() && taken < count && onlineCpus() > 1; ++it) {
        if (!it->online)
            continue;
        setCpuOnline(it->id, false);
        ++taken;
    }
    return taken;
}

int
CpuScheduler::bringCpusOnline(int count)
{
    int brought = 0;
    for (auto &c : cpus_) {
        if (brought >= count)
            break;
        if (c.online)
            continue;
        setCpuOnline(c.id, true);
        ++brought;
    }
    return brought;
}

void
CpuScheduler::repartitionCpus(const SpuTable<double> &cpuShares)
{
    for (auto &c : cpus_) {
        c.homeSpu = kNoSpu;
        c.timeShares.clear();
        c.revokePending = false;
        // A previously loaned CPU may now be home for its process.
        if (c.running)
            c.loaned = false;
    }
    partitionCpus(cpuShares);
    for (auto &c : cpus_) {
        if (c.running && c.homeSpu != kNoSpu)
            c.loaned = c.running->spu() != c.homeSpu;
    }
    // CPUs that changed hands while idle must pick up their new
    // owner's waiting work now.
    for (auto &c : cpus_) {
        if (!c.running)
            dispatch(c);
    }
}

void
CpuScheduler::partitionCpus(const SpuTable<double> &cpuShares)
{
    if (cpuShares.empty())
        return;

    double total = 0.0;
    for (const auto &[spu, share] : cpuShares)
        total += share;
    if (total <= 0.0)
        PISO_FATAL("CPU shares sum to zero");

    // Only online CPUs are divisible capacity; after a fault takes CPUs
    // away the same shares re-spread proportionally over what is left.
    std::vector<std::size_t> online;
    for (std::size_t i = 0; i < cpus_.size(); ++i) {
        if (cpus_[i].online)
            online.push_back(i);
    }
    if (online.empty())
        PISO_FATAL("partitioning a machine with no online CPUs");

    // Scale shares to CPU counts.
    const double scale = static_cast<double>(online.size()) / total;
    std::size_t next = 0;

    // First pass: dedicated CPUs for the integral part of each share.
    std::vector<std::pair<SpuId, double>> fractions;
    for (const auto &[spu, share] : cpuShares) {
        const double cpus = share * scale;
        auto whole = static_cast<std::size_t>(std::floor(cpus + 1e-9));
        for (std::size_t i = 0; i < whole && next < online.size(); ++i)
            cpus_[online[next++]].homeSpu = spu;
        const double frac = cpus - static_cast<double>(whole);
        if (frac > 1e-9)
            fractions.emplace_back(spu, frac);
    }

    // Second pass: pack fractional remainders onto the leftover CPUs as
    // time shares (Section 3.1's time partitioning of remainder CPUs).
    for (; next < online.size(); ++next) {
        Cpu &c = cpus_[online[next]];
        double room = 1.0;
        while (!fractions.empty() && room > 1e-9) {
            auto &[spu, frac] = fractions.front();
            const double take = std::min(room, frac);
            c.timeShares.emplace_back(spu, take);
            room -= take;
            frac -= take;
            if (frac <= 1e-9)
                fractions.erase(fractions.begin());
        }
        if (!c.timeShares.empty())
            c.homeSpu = c.timeShares.front().first;
    }
}

void
CpuScheduler::save(CkptWriter &w) const
{
    w.time(lastDecay_);
    spuCpuTime_.saveTable(
        w, [](CkptWriter &wr, const Time &t) { wr.time(t); });

    w.u64(cpus_.size());
    for (const Cpu &c : cpus_) {
        w.i64(c.homeSpu);
        w.u64(c.timeShares.size());
        for (const auto &[spu, frac] : c.timeShares) {
            w.i64(spu);
            w.f64(frac);
        }
        w.i64(c.running ? c.running->pid() : kNoPid);
        w.boolean(c.online);
        w.boolean(c.loaned);
        w.boolean(c.revokePending);
        w.i64(c.lastSpu);
        w.time(c.noLoanBefore);
        w.time(c.lastDispatch);
        w.time(c.idleSince);
        w.time(c.busyTime);
        w.time(c.idleTime);
    }

    // Registration order of live processes (pid order is preserved by
    // the std::remove-based erase in processExited).
    w.u64(all_.size());
    for (const Process *p : all_)
        w.i64(p->pid());

    saveReady(w);
}

void
CpuScheduler::load(CkptReader &r,
                   const std::function<Process *(Pid)> &byPid)
{
    lastDecay_ = r.time();
    spuCpuTime_.loadTable(
        r, [](CkptReader &rd, Time &t) { t = rd.time(); });

    const std::uint64_t ncpus = r.u64();
    if (ncpus != cpus_.size()) {
        throw ConfigError("checkpoint image rejected: CPU count " +
                          std::to_string(ncpus) + " != machine's " +
                          std::to_string(cpus_.size()));
    }
    for (Cpu &c : cpus_) {
        c.homeSpu = static_cast<SpuId>(r.i64());
        c.timeShares.clear();
        const std::uint64_t nshares = r.u64();
        for (std::uint64_t i = 0; i < nshares; ++i) {
            const auto spu = static_cast<SpuId>(r.i64());
            const double frac = r.f64();
            c.timeShares.emplace_back(spu, frac);
        }
        // Set the running pointer directly: the process is already
        // mid-segment in the image, so startRunning must NOT run.
        const auto pid = static_cast<Pid>(r.i64());
        c.running = pid == kNoPid ? nullptr : byPid(pid);
        c.online = r.boolean();
        c.loaned = r.boolean();
        c.revokePending = r.boolean();
        c.lastSpu = static_cast<SpuId>(r.i64());
        c.noLoanBefore = r.time();
        c.lastDispatch = r.time();
        c.idleSince = r.time();
        c.busyTime = r.time();
        c.idleTime = r.time();
    }

    all_.clear();
    const std::uint64_t nall = r.u64();
    for (std::uint64_t i = 0; i < nall; ++i)
        all_.push_back(byPid(static_cast<Pid>(r.i64())));

    loadReady(r, byPid);
}

void
CpuScheduler::restoreTick(Time when, std::uint64_t seq)
{
    events_.scheduleRestored(when, seq, [this] { tick(); }, "schedTick");
}

} // namespace piso
