#include "src/os/locks.hh"

#include <algorithm>

#include "src/os/process.hh"
#include "src/sim/log.hh"

namespace piso {

int
LockTable::create(bool readersWriter)
{
    Lock l;
    l.readersWriter = readersWriter;
    locks_.push_back(std::move(l));
    return static_cast<int>(locks_.size()) - 1;
}

LockTable::Lock &
LockTable::lock(int id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= locks_.size())
        PISO_PANIC("unknown lock id ", id);
    return locks_[static_cast<std::size_t>(id)];
}

const LockTable::Lock &
LockTable::lock(int id) const
{
    return const_cast<LockTable *>(this)->lock(id);
}

bool
LockTable::acquire(int id, Process *p, bool exclusive)
{
    Lock &l = lock(id);
    l.stats.acquisitions.add();

    // Mutex-mode locks are always exclusive.
    if (!l.readersWriter)
        exclusive = true;

    const bool free = l.holders.empty();
    const bool shareable =
        !exclusive && !l.heldExclusive && l.queue.empty();
    if (free || (shareable && !l.holders.empty())) {
        l.holders.push_back(p);
        l.heldExclusive = exclusive;
        return true;
    }

    l.stats.contended.add();
    l.queue.push_back(Waiter{p, exclusive});
    return false;
}

void
LockTable::grantWaiters(Lock &l, std::vector<Process *> &granted)
{
    while (!l.queue.empty()) {
        Waiter &w = l.queue.front();
        if (l.holders.empty()) {
            l.holders.push_back(w.proc);
            l.heldExclusive = w.exclusive;
            granted.push_back(w.proc);
            l.queue.pop_front();
            continue;
        }
        // Lock is held by readers: admit further readers only.
        if (!l.heldExclusive && !w.exclusive) {
            l.holders.push_back(w.proc);
            granted.push_back(w.proc);
            l.queue.pop_front();
            continue;
        }
        break;
    }
}

std::vector<Process *>
LockTable::release(int id, Process *p)
{
    Lock &l = lock(id);
    auto it = std::find(l.holders.begin(), l.holders.end(), p);
    if (it == l.holders.end())
        PISO_PANIC("process '", p->name(), "' releases lock ", id,
                   " it does not hold");
    l.holders.erase(it);
    if (l.holders.empty())
        l.heldExclusive = false;

    std::vector<Process *> granted;
    if (!l.heldExclusive)
        grantWaiters(l, granted);
    return granted;
}

bool
LockTable::holds(int id, const Process *p) const
{
    const Lock &l = lock(id);
    return std::find(l.holders.begin(), l.holders.end(), p) !=
           l.holders.end();
}

std::vector<Process *>
LockTable::holdersOf(int id) const
{
    return lock(id).holders;
}

const LockStats &
LockTable::stats(int id) const
{
    return lock(id).stats;
}

} // namespace piso
