#include "src/os/locks.hh"

#include <algorithm>

#include "src/os/process.hh"
#include "src/util/log.hh"
#include "src/util/error.hh"

namespace piso {

int
LockTable::create(bool readersWriter)
{
    Lock l;
    l.readersWriter = readersWriter;
    locks_.push_back(std::move(l));
    return static_cast<int>(locks_.size()) - 1;
}

LockTable::Lock &
LockTable::lock(int id)
{
    if (id < 0 || static_cast<std::size_t>(id) >= locks_.size())
        PISO_PANIC("unknown lock id ", id);
    return locks_[static_cast<std::size_t>(id)];
}

const LockTable::Lock &
LockTable::lock(int id) const
{
    return const_cast<LockTable *>(this)->lock(id);
}

bool
LockTable::acquire(int id, Process *p, bool exclusive)
{
    Lock &l = lock(id);
    l.stats.acquisitions.add();

    // Mutex-mode locks are always exclusive.
    if (!l.readersWriter)
        exclusive = true;

    const bool free = l.holders.empty();
    const bool shareable =
        !exclusive && !l.heldExclusive && l.queue.empty();
    if (free || (shareable && !l.holders.empty())) {
        l.holders.push_back(p);
        l.heldExclusive = exclusive;
        return true;
    }

    l.stats.contended.add();
    l.queue.push_back(Waiter{p, exclusive});
    return false;
}

void
LockTable::grantWaiters(Lock &l, std::vector<Process *> &granted)
{
    while (!l.queue.empty()) {
        Waiter &w = l.queue.front();
        if (l.holders.empty()) {
            l.holders.push_back(w.proc);
            l.heldExclusive = w.exclusive;
            granted.push_back(w.proc);
            l.queue.pop_front();
            continue;
        }
        // Lock is held by readers: admit further readers only.
        if (!l.heldExclusive && !w.exclusive) {
            l.holders.push_back(w.proc);
            granted.push_back(w.proc);
            l.queue.pop_front();
            continue;
        }
        break;
    }
}

std::vector<Process *>
LockTable::release(int id, Process *p)
{
    Lock &l = lock(id);
    auto it = std::find(l.holders.begin(), l.holders.end(), p);
    if (it == l.holders.end())
        PISO_PANIC("process '", p->name(), "' releases lock ", id,
                   " it does not hold");
    l.holders.erase(it);
    if (l.holders.empty())
        l.heldExclusive = false;

    std::vector<Process *> granted;
    if (!l.heldExclusive)
        grantWaiters(l, granted);
    return granted;
}

bool
LockTable::holds(int id, const Process *p) const
{
    const Lock &l = lock(id);
    return std::find(l.holders.begin(), l.holders.end(), p) !=
           l.holders.end();
}

std::vector<Process *>
LockTable::holdersOf(int id) const
{
    return lock(id).holders;
}

const LockStats &
LockTable::stats(int id) const
{
    return lock(id).stats;
}

void
LockTable::save(CkptWriter &w) const
{
    w.u64(locks_.size());
    for (const Lock &l : locks_) {
        w.boolean(l.readersWriter);
        w.boolean(l.heldExclusive);
        w.u64(l.holders.size());
        for (const Process *p : l.holders)
            w.i64(p->pid());
        w.u64(l.queue.size());
        for (const Waiter &wt : l.queue) {
            w.i64(wt.proc->pid());
            w.boolean(wt.exclusive);
        }
        l.stats.save(w);
    }
}

void
LockTable::load(CkptReader &r,
                const std::function<Process *(Pid)> &byPid)
{
    const std::uint64_t n = r.u64();
    if (n != locks_.size()) {
        throw ConfigError("checkpoint lock count " + std::to_string(n) +
                          " does not match the replayed configuration");
    }
    for (Lock &l : locks_) {
        l.readersWriter = r.boolean();
        l.heldExclusive = r.boolean();
        const std::uint64_t holders = r.u64();
        l.holders.clear();
        for (std::uint64_t i = 0; i < holders; ++i)
            l.holders.push_back(byPid(static_cast<Pid>(r.i64())));
        const std::uint64_t waiters = r.u64();
        l.queue.clear();
        for (std::uint64_t i = 0; i < waiters; ++i) {
            Waiter wt;
            wt.proc = byPid(static_cast<Pid>(r.i64()));
            wt.exclusive = r.boolean();
            l.queue.push_back(wt);
        }
        l.stats.load(r);
    }
}

} // namespace piso
