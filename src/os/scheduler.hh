#ifndef PISO_OS_SCHEDULER_HH
#define PISO_OS_SCHEDULER_HH

/**
 * @file
 * CPU scheduling framework.
 *
 * The base CpuScheduler models the parts of IRIX scheduling the paper
 * keeps: 30 ms time slices, a 10 ms clock tick, and degrading
 * priorities (recent CPU usage raises a process's priority number,
 * i.e. lowers its precedence; usage decays by half every second).
 *
 * Policies differ only in *which* ready process a CPU may take:
 *  - SmpScheduler (src/os):    any process, global queue — IRIX "SMP".
 *  - QuotaScheduler (src/core): home-SPU only — fixed quotas, "Quo".
 *  - PisoScheduler (src/core):  home-SPU first, idle CPUs loaned to
 *    other SPUs with <=10 ms revocation — "PIso" (Section 3.1).
 *
 * The scheduler assigns CPUs; the Kernel (a SchedClient) executes the
 * processes' compute segments and tells the scheduler about blocking.
 */

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/core/spu_table.hh"
#include "src/sim/checkpoint.hh"
#include "src/os/process.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/ids.hh"
#include "src/util/time.hh"

namespace piso {

/**
 * Executes processes on behalf of the scheduler (implemented by the
 * Kernel). The contract: after startRunning() the process is executing
 * a segment; the client reports back via processBlocked()/
 * processExited() when it stops on its own, and must halt the segment
 * synchronously when the scheduler calls stopRunning() (preemption).
 */
class SchedClient
{
  public:
    virtual ~SchedClient() = default;

    /** Begin or resume executing @p p (already marked Running). */
    virtual void startRunning(Process &p) = 0;

    /** Preempt @p p mid-segment: cancel its pending segment-end event
     *  and account the partial progress. Called before re-queueing. */
    virtual void stopRunning(Process &p) = 0;
};

/** Per-CPU scheduling state. */
struct Cpu
{
    CpuId id = 0;

    /** SPU owning this CPU under space partitioning (kNoSpu = none,
     *  i.e. the SMP scheme). */
    SpuId homeSpu = kNoSpu;

    /**
     * Time-partition shares for a CPU split between SPUs (the paper's
     * hybrid policy: fractions of a CPU are time-multiplexed). Empty
     * for dedicated or unpartitioned CPUs.
     */
    std::vector<std::pair<SpuId, double>> timeShares;

    Process *running = nullptr;

    /** False while the CPU is offline (fault injection). An offline
     *  CPU never dispatches and owns no home SPU. */
    bool online = true;

    /** PIso: currently running a process from a foreign SPU. */
    bool loaned = false;

    /** PIso: a home process awaits this CPU; revoke at next tick. */
    bool revokePending = false;

    /** SPU of the last process that executed here (cache contents). */
    SpuId lastSpu = kNoSpu;

    /** PIso loan hold-off: no foreign process may be placed here
     *  before this time (limits cache-polluting reallocation churn). */
    Time noLoanBefore = 0;

    Time lastDispatch = 0;
    Time idleSince = 0;
    Time busyTime = 0;
    Time idleTime = 0;
};

/**
 * Base scheduler: owns the CPUs, the clock tick, time slices, priority
 * decay, and all accounting. Subclasses provide the ready-queue
 * structure and the eligibility rules.
 */
class CpuScheduler
{
  public:
    /**
     * @param events     Simulation event queue.
     * @param numCpus    Number of CPUs in the machine.
     * @param tickPeriod Clock-tick interval (IRIX: 10 ms).
     * @param timeSlice  Scheduling quantum (IRIX: 30 ms).
     */
    CpuScheduler(EventQueue &events, int numCpus,
                 Time tickPeriod = 10 * kMs, Time timeSlice = 30 * kMs);
    virtual ~CpuScheduler() = default;

    CpuScheduler(const CpuScheduler &) = delete;
    CpuScheduler &operator=(const CpuScheduler &) = delete;

    /** Attach the execution client (the Kernel). Must precede start(). */
    void setClient(SchedClient *client) { client_ = client; }

    /** Begin ticking. Call once, before the first process is ready. */
    void start();

    /** @name Kernel-facing process transitions */
    /// @{
    /** Register a process (any state) with the scheduler. */
    void processCreated(Process *p);

    /** Mark @p p runnable (Embryo or Blocked -> Ready) and try to place
     *  it on a CPU. */
    void processReady(Process *p);

    /** The running process @p p blocked; frees its CPU. */
    void processBlocked(Process *p);

    /** The running process @p p exited; frees its CPU. */
    void processExited(Process *p);
    /// @}

    /** @name Queries and accounting */
    /// @{
    int numCpus() const { return static_cast<int>(cpus_.size()); }
    const Cpu &cpu(CpuId id) const { return cpus_.at(id); }
    Cpu &cpu(CpuId id) { return cpus_.at(id); }

    /** CPUs currently online. */
    int onlineCpus() const;

    /** Total CPU time consumed by processes of @p spu. */
    Time spuCpuTime(SpuId spu) const;

    /** Sum of idle time across CPUs (updated through the last
     *  dispatch/idle transition). */
    Time totalIdleTime() const;

    Time tickPeriod() const { return tickPeriod_; }
    Time timeSlice() const { return timeSlice_; }

    /** Ready-structure scan iterations performed by policy decisions
     *  (queue scans, decay sweeps) — the O(SPUs)-regression canary
     *  surfaced as perf.policy_iters_cpu. Out of band: never
     *  serialised, never in JSONL. */
    std::uint64_t policyIters() const { return policyIters_; }
    /// @}

    /**
     * Run the pre-PR-9 O(all-SPUs) loop bodies (eager decay sweep,
     * full ready-table scans) instead of the lazy/active-set ones.
     * Bit-exact with the default: only wall-clock differs. Benchmark
     * baseline only (bench/ext_scale); excluded from the config
     * digest. Must be set before the first processCreated().
     */
    void setEagerPolicyLoops(bool eager) { eagerLoops_ = eager; }

    /**
     * Record the SPU tree's parent links (kNoSpu / absent = top
     * level). The base scheduler ignores them; the PIso policy uses
     * kinship to prefer lending an idle CPU within the owner's own
     * group before strangers take it.
     */
    virtual void setSpuParents(const SpuTable<SpuId> & /* parents */) {}

    /** Assign home SPUs to CPUs from per-SPU CPU shares (the hybrid
     *  space/time partition of Section 3.1): each SPU gets
     *  floor(share) dedicated CPUs; fractional remainders are packed
     *  onto shared CPUs as time shares. No-op for an empty table. */
    void partitionCpus(const SpuTable<double> &cpuShares);

    /**
     * Re-run the partition mid-run (SPUs created, destroyed,
     * suspended, or resumed — Section 2.1's dynamic SPU life cycle).
     * Running processes are not preempted here; ownership takes
     * effect through the normal tick/slice machinery.
     */
    void repartitionCpus(const SpuTable<double> &cpuShares);

    /** @name Fault injection: CPU offline/online */
    /// @{
    /**
     * Take @p cpuId out of service (or return it). Going offline
     * preempts the running process back into the ready queues; the CPU
     * keeps no home SPU until the next (re)partition. Callers should
     * follow with repartitionCpus() so entitlements re-spread over the
     * remaining capacity.
     */
    void setCpuOnline(CpuId cpuId, bool online);

    /** Take up to @p count online CPUs offline, highest index first.
     *  Always leaves at least one CPU online.
     *  @return CPUs actually taken. */
    int takeCpusOffline(int count);

    /** Bring up to @p count offline CPUs back, lowest index first.
     *  @return CPUs actually brought back. */
    int bringCpusOnline(int count);
    /// @}

    /** @name Checkpoint
     *  Covers the base accounting, the per-CPU state (running
     *  processes as pids) and the subclass ready queues. The clock
     *  tick is re-established separately through restoreTick() with
     *  its original (when, seq) ordering key. */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r,
              const std::function<Process *(Pid)> &byPid);
    void restoreTick(Time when, std::uint64_t seq);
    /// @}

  protected:
    /** Pick (and remove from the ready structures) the next process for
     *  @p cpu, or nullptr to leave it idle. */
    virtual Process *selectNext(Cpu &cpu) = 0;

    /** Add @p p to the ready structures. */
    virtual void enqueueReady(Process *p) = 0;

    /** May @p p be placed on idle CPU @p cpu right now? */
    virtual bool eligibleIdle(const Cpu &cpu, const Process *p) const = 0;

    /** Hook: @p p became ready but no idle CPU accepted it. */
    virtual void onReadyNoIdle(Process *p);

    /** @name Checkpoint hooks: subclass ready-queue state
     *  Must round-trip the ready structures exactly (FIFO order
     *  included) so restored dispatch decisions are bit-identical. */
    /// @{
    virtual void saveReady(CkptWriter &w) const = 0;
    virtual void
    loadReady(CkptReader &r,
              const std::function<Process *(Pid)> &byPid) = 0;
    /// @}

    /** Hook: per-tick policy work (revocation, owner rotation). Runs
     *  after the base slice handling. */
    virtual void policyTick();

    /** Place the best eligible process (if any) on @p cpu. */
    void dispatch(Cpu &cpu);

    /** Preempt whatever runs on @p cpu and re-dispatch. */
    void preemptCpu(Cpu &cpu);

    /** SPU whose turn it is on a time-partitioned CPU (the CPU's home
     *  SPU for dedicated CPUs). */
    SpuId currentOwner(const Cpu &cpu) const;

    /** Priority comparison helper: true if a should run before b. */
    static bool higherPriority(const Process *a, const Process *b);

    // piso-lint: allow(checkpoint-field-coverage) -- wiring reference;
    // the event queue is imaged by Simulation, not the scheduler.
    EventQueue &events_;
    // piso-lint: allow(checkpoint-field-coverage) -- callback wiring,
    // re-established by setup replay; not serialisable state.
    SchedClient *client_ = nullptr;
    std::vector<Cpu> cpus_;
    std::vector<Process *> all_;

    /** Eager-baseline mode (see setEagerPolicyLoops). */
    // piso-lint: allow(checkpoint-field-coverage) -- experiment
    // configuration, identical after deterministic setup replay.
    bool eagerLoops_ = false;

    /** Policy-loop iteration counter (see policyIters). Out of band
     *  like MemPolicy::policyIters: host-side perf telemetry, never
     *  serialised. */
    // piso-lint: allow(checkpoint-field-coverage) -- out-of-band perf
    // telemetry (policy_iters_cpu), deliberately not imaged.
    std::uint64_t policyIters_ = 0;

  private:
    void tick();
    void freeCpu(Process *p, bool requeue);

    // piso-lint: allow(checkpoint-field-coverage) -- scheduler tuning
    // configuration, identical after deterministic setup replay.
    Time tickPeriod_;
    // piso-lint: allow(checkpoint-field-coverage) -- scheduler tuning
    // configuration, identical after deterministic setup replay.
    Time timeSlice_;
    // piso-lint: allow(checkpoint-field-coverage) -- scheduler tuning
    // configuration, identical after deterministic setup replay.
    Time decayPeriod_ = kSec;
    Time lastDecay_ = 0;

    /** Decay generation: bumped once per decay period instead of
     *  sweeping every process; processes fold missed halvings in on
     *  read (Process::foldDecay). */
    // piso-lint: allow(checkpoint-field-coverage) -- relative epoch
    // tag; save folds decay into each process, load resyncs them.
    std::uint32_t decayEpoch_ = 0;
    /** Rotation period for time-partitioned CPUs. */
    // piso-lint: allow(checkpoint-field-coverage) -- scheduler tuning
    // configuration, identical after deterministic setup replay.
    Time sharePeriod_ = 100 * kMs;

    SpuTable<Time> spuCpuTime_;
};

} // namespace piso

#endif // PISO_OS_SCHEDULER_HH
