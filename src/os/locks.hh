#ifndef PISO_OS_LOCKS_HH
#define PISO_OS_LOCKS_HH

/**
 * @file
 * Kernel lock model (Section 3.4 "Shared Kernel Resources").
 *
 * The paper found two semaphores whose contention could break
 * isolation: the inode lock (fixed by making it multiple-readers/
 * one-writer) and the page-insert lock (granularity reduced). This
 * model lets workloads contend on named kernel locks in either mutex
 * or readers-writer mode so the ablation bench can reproduce the
 * 20-30% base-system response-time effect.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/ids.hh"
#include "src/sim/stats.hh"

namespace piso {

class Process;

/** Contention statistics for one lock. */
struct LockStats
{
    Counter acquisitions;
    Counter contended;  //!< acquisitions that had to wait

    void
    save(CkptWriter &w) const
    {
        acquisitions.save(w);
        contended.save(w);
    }

    void
    load(CkptReader &r)
    {
        acquisitions.load(r);
        contended.load(r);
    }
};

/** Table of kernel locks usable from LockActions. */
class LockTable
{
  public:
    /**
     * Create a lock.
     * @param readersWriter true: shared acquisitions may overlap
     *                      (multiple-readers/one-writer semaphore);
     *                      false: plain mutual exclusion.
     * @return the lock id.
     */
    int create(bool readersWriter);

    /**
     * Attempt to acquire lock @p id for @p p.
     * @param exclusive writer-side acquisition (always effectively true
     *                  for mutex-mode locks).
     * @return true if granted immediately; false if @p p was queued
     *         (the caller must block it).
     */
    bool acquire(int id, Process *p, bool exclusive);

    /**
     * Release @p p's hold on lock @p id.
     * @return processes granted the lock by this release, in FIFO
     *         order (readers are granted in batches); the caller must
     *         wake them.
     */
    std::vector<Process *> release(int id, Process *p);

    /** True if @p p currently holds lock @p id. */
    bool holds(int id, const Process *p) const;

    /** Current holders of lock @p id (readers, or the one writer). */
    std::vector<Process *> holdersOf(int id) const;

    const LockStats &stats(int id) const;

    std::size_t count() const { return locks_.size(); }

    /** @name Checkpoint — holders and waiters are serialised as pids;
     *  load() resolves them back to processes through @p byPid. */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r,
              const std::function<Process *(Pid)> &byPid);
    /// @}

  private:
    struct Waiter
    {
        Process *proc;
        bool exclusive;
    };

    struct Lock
    {
        bool readersWriter = false;
        std::vector<Process *> holders;  //!< readers, or the one
                                         //!< exclusive holder
        bool heldExclusive = false;
        std::deque<Waiter> queue;
        LockStats stats;
    };

    Lock &lock(int id);
    const Lock &lock(int id) const;

    /** Grant to as many queued waiters as the mode allows. */
    void grantWaiters(Lock &l, std::vector<Process *> &granted);

    std::vector<Lock> locks_;
};

} // namespace piso

#endif // PISO_OS_LOCKS_HH
