#include "src/os/vm.hh"

#include "src/sim/log.hh"

namespace piso {

VirtualMemory::VirtualMemory(PhysicalMemory &phys)
    : phys_(phys)
{
}

void
VirtualMemory::registerSpu(SpuId spu)
{
    spus_.try_emplace(spu);
}

const VirtualMemory::Entry &
VirtualMemory::entry(SpuId spu) const
{
    auto it = spus_.find(spu);
    if (it == spus_.end())
        PISO_PANIC("unknown SPU ", spu);
    return it->second;
}

VirtualMemory::Entry &
VirtualMemory::entry(SpuId spu)
{
    return const_cast<Entry &>(
        static_cast<const VirtualMemory *>(this)->entry(spu));
}

void
VirtualMemory::setEntitled(SpuId spu, std::uint64_t pages)
{
    entry(spu).levels.entitled = pages;
}

void
VirtualMemory::setAllowed(SpuId spu, std::uint64_t pages)
{
    entry(spu).levels.allowed = pages;
}

const MemLevels &
VirtualMemory::levels(SpuId spu) const
{
    return entry(spu).levels;
}

bool
VirtualMemory::tryCharge(SpuId spu)
{
    Entry &e = entry(spu);
    if (e.levels.used >= e.levels.allowed)
        return false;
    if (!phys_.allocate(1))
        return false;
    ++e.levels.used;
    return true;
}

void
VirtualMemory::uncharge(SpuId spu)
{
    Entry &e = entry(spu);
    if (e.levels.used == 0)
        PISO_PANIC("uncharge of SPU ", spu, " with zero used pages");
    --e.levels.used;
    phys_.release(1);
}

void
VirtualMemory::transferCharge(SpuId from, SpuId to)
{
    Entry &src = entry(from);
    if (src.levels.used == 0)
        PISO_PANIC("transfer from SPU ", from, " with zero used pages");
    --src.levels.used;
    ++entry(to).levels.used;
}

bool
VirtualMemory::atLimit(SpuId spu) const
{
    const MemLevels &l = entry(spu).levels;
    return l.used >= l.allowed;
}

std::uint64_t
VirtualMemory::overAllowed(SpuId spu) const
{
    const MemLevels &l = entry(spu).levels;
    return l.used > l.allowed ? l.used - l.allowed : 0;
}

SpuId
VirtualMemory::victimSpu(SpuId requester) const
{
    // Isolation: an SPU at its own cap pays for itself.
    auto req = spus_.find(requester);
    if (req != spus_.end() &&
        req->second.levels.used >= req->second.levels.allowed &&
        req->second.levels.used > 0) {
        return requester;
    }

    // Global shortage: most-over-allowed SPU first (borrowers being
    // revoked), then the largest non-kernel holder (SMP behaviour).
    SpuId best = kNoSpu;
    std::uint64_t bestOver = 0;
    for (const auto &[spu, e] : spus_) {
        const std::uint64_t over =
            e.levels.used > e.levels.allowed
                ? e.levels.used - e.levels.allowed
                : 0;
        if (over > bestOver) {
            bestOver = over;
            best = spu;
        }
    }
    if (best != kNoSpu)
        return best;

    std::uint64_t bestUsed = 0;
    for (const auto &[spu, e] : spus_) {
        if (spu == kKernelSpu)
            continue;
        if (e.levels.used > bestUsed) {
            bestUsed = e.levels.used;
            best = spu;
        }
    }
    return best;
}

SpuId
VirtualMemory::weightedVictim(Rng &rng) const
{
    std::uint64_t total = 0;
    for (const auto &[spu, e] : spus_) {
        if (spu != kKernelSpu)
            total += e.levels.used;
    }
    if (total == 0)
        return kNoSpu;
    std::uint64_t pick = rng.uniformInt(total);
    for (const auto &[spu, e] : spus_) {
        if (spu == kKernelSpu)
            continue;
        if (pick < e.levels.used)
            return spu;
        pick -= e.levels.used;
    }
    return kNoSpu;
}

void
VirtualMemory::notePressure(SpuId spu)
{
    ++entry(spu).pressure;
}

std::uint64_t
VirtualMemory::takePressure(SpuId spu)
{
    Entry &e = entry(spu);
    const std::uint64_t v = e.pressure;
    e.pressure = 0;
    return v;
}

std::uint64_t
VirtualMemory::pressure(SpuId spu) const
{
    return entry(spu).pressure;
}

std::vector<SpuId>
VirtualMemory::spus() const
{
    std::vector<SpuId> out;
    out.reserve(spus_.size());
    for (const auto &[spu, e] : spus_)
        out.push_back(spu);
    return out;
}

} // namespace piso
