#include "src/os/vm.hh"

#include "src/util/log.hh"

namespace piso {

VirtualMemory::VirtualMemory(PhysicalMemory &phys)
    : phys_(phys)
{
}

void
VirtualMemory::registerSpu(SpuId spu)
{
    ledger_.registerSpu(spu);
    pressure_.tryEmplace(spu);
    ++version_;
}

std::uint64_t &
VirtualMemory::pressureEntry(SpuId spu)
{
    std::uint64_t *p = pressure_.find(spu);
    if (!p)
        PISO_PANIC("unknown SPU ", spu);
    return *p;
}

void
VirtualMemory::setEntitled(SpuId spu, std::uint64_t pages)
{
    ledger_.setEntitled(spu, pages);
    ++version_;
}

void
VirtualMemory::setAllowed(SpuId spu, std::uint64_t pages)
{
    ledger_.setAllowed(spu, pages);
    ++version_;
}

const MemLevels &
VirtualMemory::levels(SpuId spu) const
{
    return ledger_.levels(spu);
}

bool
VirtualMemory::tryCharge(SpuId spu)
{
    if (ledger_.atLimit(spu))
        return false;
    if (!phys_.allocate(1))
        return false;
    ledger_.use(spu);
    ++version_;
    return true;
}

void
VirtualMemory::uncharge(SpuId spu)
{
    ledger_.release(spu);
    phys_.release(1);
    ++version_;
}

void
VirtualMemory::transferCharge(SpuId from, SpuId to)
{
    ledger_.transfer(from, to);
    ++version_;
}

bool
VirtualMemory::atLimit(SpuId spu) const
{
    return ledger_.atLimit(spu);
}

std::uint64_t
VirtualMemory::overAllowed(SpuId spu) const
{
    return ledger_.overAllowed(spu);
}

SpuId
VirtualMemory::victimSpu(SpuId requester) const
{
    // Isolation: an SPU at its own cap pays for itself.
    if (ledger_.knows(requester)) {
        const MemLevels &l = ledger_.levels(requester);
        if (l.used >= l.allowed && l.used > 0)
            return requester;
    }

    // Global shortage: most-over-allowed SPU first (borrowers being
    // revoked), then the largest non-kernel holder (SMP behaviour).
    SpuId best = kNoSpu;
    std::uint64_t bestOver = 0;
    for (SpuId spu : ledger_.spus()) {
        const std::uint64_t over = ledger_.overAllowed(spu);
        if (over > bestOver) {
            bestOver = over;
            best = spu;
        }
    }
    if (best != kNoSpu)
        return best;

    std::uint64_t bestUsed = 0;
    for (SpuId spu : ledger_.spus()) {
        if (spu == kKernelSpu)
            continue;
        const std::uint64_t used = ledger_.levels(spu).used;
        if (used > bestUsed) {
            bestUsed = used;
            best = spu;
        }
    }
    return best;
}

SpuId
VirtualMemory::weightedVictim(Rng &rng) const
{
    const std::vector<SpuId> all = ledger_.spus();
    std::uint64_t total = 0;
    for (SpuId spu : all) {
        if (spu != kKernelSpu)
            total += ledger_.levels(spu).used;
    }
    if (total == 0)
        return kNoSpu;
    std::uint64_t pick = rng.uniformInt(total);
    for (SpuId spu : all) {
        if (spu == kKernelSpu)
            continue;
        const std::uint64_t used = ledger_.levels(spu).used;
        if (pick < used)
            return spu;
        pick -= used;
    }
    return kNoSpu;
}

void
VirtualMemory::notePressure(SpuId spu)
{
    ++pressureEntry(spu);
    ++version_;
}

std::uint64_t
VirtualMemory::takePressure(SpuId spu)
{
    std::uint64_t &p = pressureEntry(spu);
    const std::uint64_t v = p;
    p = 0;
    if (v != 0)
        ++version_;
    return v;
}

std::uint64_t
VirtualMemory::pressure(SpuId spu) const
{
    const std::uint64_t *p = pressure_.find(spu);
    if (!p)
        PISO_PANIC("unknown SPU ", spu);
    return *p;
}

std::vector<SpuId>
VirtualMemory::spus() const
{
    return ledger_.spus();
}

} // namespace piso
