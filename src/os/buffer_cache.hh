#ifndef PISO_OS_BUFFER_CACHE_HH
#define PISO_OS_BUFFER_CACHE_HH

/**
 * @file
 * File buffer cache bookkeeping.
 *
 * Tracks which file blocks are resident, their dirty/flushing state,
 * the owning SPU of each page (pages touched by a second SPU get
 * reclassified to the `shared` SPU by the Kernel, per Section 2.2),
 * and LRU order for stealing. The cache holds *no* frames itself — the
 * Kernel charges/uncharges frames through VirtualMemory and tells the
 * cache what happened; this keeps all memory policy in one place.
 */

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <vector>

#include "src/sim/ids.hh"

namespace piso {

/** Identifies one file block. */
struct BlockKey
{
    FileId file = kNoFile;
    std::uint64_t block = 0;

    friend auto operator<=>(const BlockKey &, const BlockKey &) = default;
};

/** State of a cached block. */
struct CacheBlock
{
    BlockKey key;
    bool valid = false;     //!< data present (false: read in flight)
    bool dirty = false;
    bool flushing = false;  //!< write in flight; not stealable
    SpuId owner = kNoSpu;   //!< SPU charged for the page

    /** Callbacks run when an in-flight read completes. */
    std::vector<std::function<void()>> waiters;

    /** Position in the LRU list (most recent at front). */
    std::list<BlockKey>::iterator lruPos;
};

/** Buffer-cache block table with LRU stealing. */
class BufferCache
{
  public:
    BufferCache() = default;
    BufferCache(const BufferCache &) = delete;
    BufferCache &operator=(const BufferCache &) = delete;

    /** Look up a block; nullptr on miss. Does not touch LRU. */
    CacheBlock *find(const BlockKey &key);

    /**
     * Insert a block whose frame the caller has already charged to
     * @p owner. @p valid=false marks a read in flight.
     */
    CacheBlock &insert(const BlockKey &key, SpuId owner, bool valid);

    /** Move @p blk to the front of the LRU list. */
    void touch(CacheBlock &blk);

    /** Remove a block (the caller uncharges the frame). */
    void remove(const BlockKey &key);

    /** Change the charged owner of @p blk (shared-page reclassification;
     *  the caller moves the frame charge in VirtualMemory). */
    void setOwner(CacheBlock &blk, SpuId owner);

    /**
     * Steal the least-recently-used *clean, valid, non-flushing* block
     * owned by @p victim (or by anyone if @p victim == kNoSpu).
     * The block is removed; its owner is returned through @p owner so
     * the caller can transfer the frame charge.
     * @return true if a block was stolen.
     */
    bool stealClean(SpuId victim, SpuId &owner);

    /** Mark @p blk valid and run (and clear) its waiters. */
    void markValid(CacheBlock &blk);

    /** Dirty/clean transitions keep the dirty count exact. */
    void markDirty(CacheBlock &blk);
    void markClean(CacheBlock &blk);

    /** Total cached blocks. */
    std::size_t size() const { return blocks_.size(); }

    /** Dirty (unflushed) blocks. */
    std::size_t dirtyCount() const { return dirty_; }

    /** Blocks charged to @p spu. */
    std::size_t pagesOf(SpuId spu) const;

    /** Invoke @p fn on every dirty, valid, non-flushing block. */
    void forEachDirty(const std::function<void(CacheBlock &)> &fn);

  private:
    std::map<BlockKey, CacheBlock> blocks_;
    std::list<BlockKey> lru_;  //!< front = most recently used
    std::size_t dirty_ = 0;
    std::map<SpuId, std::size_t> perSpu_;
};

} // namespace piso

#endif // PISO_OS_BUFFER_CACHE_HH
