#ifndef PISO_OS_BUFFER_CACHE_HH
#define PISO_OS_BUFFER_CACHE_HH

/**
 * @file
 * File buffer cache bookkeeping.
 *
 * Tracks which file blocks are resident, their dirty/flushing state,
 * the owning SPU of each page (pages touched by a second SPU get
 * reclassified to the `shared` SPU by the Kernel, per Section 2.2),
 * and LRU order for stealing. The cache holds *no* frames itself — the
 * Kernel charges/uncharges frames through VirtualMemory and tells the
 * cache what happened; this keeps all memory policy in one place.
 *
 * Storage is an open-addressed hash index (linear probing with
 * backward-shift deletion) over a pointer-stable block slab, with the
 * LRU order kept as an intrusive doubly-linked list of slab indices —
 * lookup and eviction cost no red-black-tree rebalances and no
 * per-node allocations.
 */

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/core/spu_table.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/ids.hh"

namespace piso {

/** Identifies one file block. */
struct BlockKey
{
    FileId file = kNoFile;
    std::uint64_t block = 0;

    friend auto operator<=>(const BlockKey &, const BlockKey &) = default;
};

/** State of a cached block. */
struct CacheBlock
{
    BlockKey key;
    bool valid = false;     //!< data present (false: read in flight)
    bool dirty = false;
    bool flushing = false;  //!< write in flight; not stealable
    SpuId owner = kNoSpu;   //!< SPU charged for the page

    /** Callbacks run when an in-flight read completes. */
    std::vector<std::function<void()>> waiters;

    /** @name BufferCache internals (slab index and LRU links). */
    /// @{
    std::uint32_t slabIndex = 0;
    std::uint32_t lruPrev = 0;
    std::uint32_t lruNext = 0;
    /// @}
};

/** Buffer-cache block table with LRU stealing. */
class BufferCache
{
  public:
    BufferCache() = default;
    BufferCache(const BufferCache &) = delete;
    BufferCache &operator=(const BufferCache &) = delete;

    /** Look up a block; nullptr on miss. Does not touch LRU. */
    CacheBlock *find(const BlockKey &key);

    /**
     * Insert a block whose frame the caller has already charged to
     * @p owner. @p valid=false marks a read in flight. The returned
     * reference (like every CacheBlock pointer) stays valid until the
     * block is removed: the slab never relocates blocks.
     */
    CacheBlock &insert(const BlockKey &key, SpuId owner, bool valid);

    /** Move @p blk to the front of the LRU list. */
    void touch(CacheBlock &blk);

    /** Remove a block (the caller uncharges the frame). */
    void remove(const BlockKey &key);

    /** Change the charged owner of @p blk (shared-page reclassification;
     *  the caller moves the frame charge in VirtualMemory). */
    void setOwner(CacheBlock &blk, SpuId owner);

    /**
     * Steal the least-recently-used *clean, valid, non-flushing* block
     * owned by @p victim (or by anyone if @p victim == kNoSpu).
     * The block is removed; its owner is returned through @p owner so
     * the caller can transfer the frame charge.
     * @return true if a block was stolen.
     */
    bool stealClean(SpuId victim, SpuId &owner);

    /** Mark @p blk valid and run (and clear) its waiters. */
    void markValid(CacheBlock &blk);

    /** Dirty/clean transitions keep the dirty count exact. */
    void markDirty(CacheBlock &blk);
    void markClean(CacheBlock &blk);

    /** Total cached blocks. */
    std::size_t size() const { return size_; }

    /** Dirty (unflushed) blocks. */
    std::size_t dirtyCount() const { return dirty_; }

    /** Blocks charged to @p spu. */
    std::size_t pagesOf(SpuId spu) const;

    /** Invoke @p fn on every dirty, valid, non-flushing block, in
     *  ascending key order (the order the old std::map walk produced,
     *  which downstream flush clustering depends on). */
    void forEachDirty(const std::function<void(CacheBlock &)> &fn);

    /** @name Checkpoint
     *  Raw structural serialisation: slab slots, free list, hash
     *  index and LRU links are written verbatim so that probe order
     *  and LRU iteration order — both observable through steal and
     *  flush decisions — restore bit-identically. Only legal when no
     *  block is invalid or flushing and no waiters are registered
     *  (I/O quiescence); save() throws InvariantError otherwise. */
    /// @{
    void save(CkptWriter &w) const;
    void load(CkptReader &r);
    /// @}

  private:
    /** Slab index meaning "none" (end of an LRU chain, free entry). */
    static constexpr std::uint32_t kNullSlot = 0xffffffffu;

    /** One hash-table entry; key.file == kNoFile marks it empty. */
    struct IndexEntry
    {
        BlockKey key;
        std::uint32_t slot = kNullSlot;
    };

    static std::uint64_t hashKey(const BlockKey &key);

    /** Grow (or create) the index so one more insert keeps the load
     *  factor at or below 3/4. */
    void ensureIndexCapacity();

    /** Probe for @p key. @return the index position holding it, or the
     *  first empty position when absent. */
    std::size_t probe(const BlockKey &key) const;

    /** Backward-shift deletion at index position @p pos. */
    void eraseIndexAt(std::size_t pos);

    void lruUnlink(CacheBlock &blk);
    void lruPushFront(CacheBlock &blk);

    std::deque<CacheBlock> slab_;
    std::vector<std::uint32_t> freeSlab_;
    std::vector<IndexEntry> index_;
    std::size_t indexMask_ = 0;
    std::uint32_t lruHead_ = kNullSlot;
    std::uint32_t lruTail_ = kNullSlot;
    std::size_t size_ = 0;
    std::size_t dirty_ = 0;
    SpuTable<std::size_t> perSpu_;
};

} // namespace piso

#endif // PISO_OS_BUFFER_CACHE_HH
