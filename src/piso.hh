#ifndef PISO_PISO_HH
#define PISO_PISO_HH

/**
 * @file
 * Umbrella header: everything a user of the performance-isolation
 * library needs.
 *
 * The library reproduces "Performance Isolation: Sharing and
 * Isolation in Shared-Memory Multiprocessors" (Verghese, Gupta,
 * Rosenblum; ASPLOS 1998): an SMP operating-system simulator with the
 * paper's SPU abstraction and the SMP / Quota / PIso resource
 * allocation schemes for CPU time, memory, and disk bandwidth.
 */

#include "src/core/disk_fair.hh"
#include "src/core/ledger.hh"
#include "src/core/mem_policy.hh"
#include "src/core/net_fair.hh"
#include "src/core/sched_piso.hh"
#include "src/core/sched_quota.hh"
#include "src/core/scheme.hh"
#include "src/core/scheme_profile.hh"
#include "src/core/spu.hh"
#include "src/machine/disk.hh"
#include "src/machine/disk_model.hh"
#include "src/machine/memory.hh"
#include "src/machine/network.hh"
#include "src/metrics/monitor.hh"
#include "src/metrics/report.hh"
#include "src/metrics/results.hh"
#include "src/os/cscan.hh"
#include "src/os/kernel.hh"
#include "src/os/sched_smp.hh"
#include "src/simulation.hh"
#include "src/util/error.hh"
#include "src/workload/filecopy.hh"
#include "src/workload/oltp.hh"
#include "src/workload/pmake.hh"
#include "src/workload/scientific.hh"
#include "src/workload/synthetic.hh"
#include "src/workload/webserver.hh"

#endif // PISO_PISO_HH
