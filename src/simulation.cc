#include "src/simulation.hh"

#include <algorithm>
#include <chrono>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string_view>

#include "src/core/disk_fair.hh"
#include "src/core/ledger.hh"
#include "src/core/net_fair.hh"
#include "src/core/sched_piso.hh"
#include "src/core/sched_quota.hh"
#include "src/machine/disk.hh"
#include "src/machine/memory.hh"
#include "src/os/buffer_cache.hh"
#include "src/os/cscan.hh"
#include "src/os/filesystem.hh"
#include "src/os/sched_smp.hh"
#include "src/os/vm.hh"
#include "src/sim/checkpoint.hh"
#include "src/sim/event_queue.hh"
#include "src/util/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"
#include "src/workload/job.hh"

namespace piso {

void
SystemConfig::setProfile(const SchemeProfile &p)
{
    cpuPolicy = p.cpu;
    memoryPolicy = p.memory;
    diskPolicy = p.disk;
    netPolicy = p.net;
}

SchemeProfile
SystemConfig::resolvedProfile() const
{
    SchemeProfile p = SchemeProfile::uniform(scheme);
    if (diskPolicy != DiskPolicy::SchemeDefault)
        p.disk = diskPolicy;
    if (cpuPolicy)
        p.cpu = *cpuPolicy;
    if (memoryPolicy)
        p.memory = *memoryPolicy;
    if (netPolicy)
        p.net = *netPolicy;
    return p;
}

namespace {

/** Serialisable pending-event kinds — the checkpoint's closed set.
 *  Event callbacks are closures and cannot be serialised; instead a
 *  checkpoint stores one of these descriptors per pending event and
 *  the restore path reconstructs the exact callback from (kind, arg).
 *  A pending event outside this set makes the boundary
 *  non-checkpointable (in-flight I/O events never appear here because
 *  quiescence already excludes them). */
enum class EvKind : std::uint8_t
{
    SchedTick,          //!< CpuScheduler clock tick
    MemPolicy,          //!< MemorySharingPolicy recomputation
    Bdflush,            //!< periodic delayed-write flush daemon
    Pageout,            //!< periodic pageout daemon
    BdflushKick,        //!< one-shot high-water bdflush kick
    ProcStart,          //!< process start (arg = pid)
    SegEnd,             //!< compute-segment end (arg = pid)
    SleepWake,          //!< sleep expiry (arg = pid)
    FaultRestoreSlow,   //!< disk-slow window end (arg = disk)
    FaultRestoreError,  //!< disk-error window end (arg = disk)
};

inline constexpr std::uint8_t kMaxEvKind =
    static_cast<std::uint8_t>(EvKind::FaultRestoreError);

/** One pending event as stored in the image. */
struct EvDesc
{
    EvKind kind = EvKind::SchedTick;
    Time when = 0;
    std::uint64_t seq = 0;
    std::int64_t arg = -1;  //!< pid or disk index, kind-dependent
};

} // namespace

struct Simulation::Impl
{
    SystemConfig cfg;
    SchemeProfile profile;

    // Trace/log state is per-simulation (snapshotted from the
    // constructing thread's ambient contexts) and re-installed for the
    // duration of run(), so concurrent Simulations on sweep workers
    // never share mutable trace or log state.
    TraceContext trace;
    LogContext log;

    Rng rng;

    EventQueue events;
    PhysicalMemory phys;
    VirtualMemory vm;
    BufferCache cache;
    FileSystem fs;
    SpuManager spuMgr;

    std::vector<std::unique_ptr<DiskDevice>> disks;
    std::vector<FairDiskScheduler *> fairSchedulers;
    std::unique_ptr<NetworkInterface> network;
    FairNetScheduler *fairNet = nullptr;
    std::unique_ptr<NumaModel> numa;

    std::unique_ptr<CpuScheduler> sched;
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<MemorySharingPolicy> memPolicy;

    struct PendingJob
    {
        SpuId spu;
        JobSpec spec;
    };
    std::vector<PendingJob> pendingJobs;
    std::vector<Job> jobs;
    bool ran = false;
    bool setupDone = false;
    std::uint64_t kernelPinnedPages = 0;

    /** Sorted fault schedule, delivered by a cursor interleaved with
     *  the event loop (not as queued events, so checkpoints and event
     *  sequence numbers stay independent of the plan). */
    std::vector<FaultEvent> faultSchedule;
    std::size_t faultCursor = 0;

    /** Pending fault-window-end events: id -> (kind, disk). Entries
     *  of fired events go stale but are never looked up again —
     *  generation-tagged EventIds are not reused. */
    std::map<EventId, std::pair<FaultKind, DiskId>> faultRestores;

    void rebalance();
    void applyBandwidthShares(DiskBandwidthTracker &tracker);
    SpuTable<SpuId> spuParents() const;
    void applyMemoryLevels();
    void applyFault(const FaultEvent &ev);

    /** @name Checkpoint internals */
    /// @{
    /** Replay the deterministic setup (levels, partition, jobs,
     *  daemons). Shared by cold run() and restore(). */
    void setupRun();

    /** FNV-1a over the canonical serialisation of everything that
     *  shapes the replayed setup. Run control (faults, maxTime,
     *  watchdogs, chaos, checkpoint knobs) is deliberately excluded
     *  so a restore may continue under a different fault plan or
     *  horizon — that is what the warm-start sweep engine does. */
    std::uint64_t configDigest() const;

    /** Classify every pending event; nullopt (and @p reject) when one
     *  is not serialisable. Sorted by sequence number. */
    std::optional<std::vector<EvDesc>>
    pendingDescriptors(std::string *reject = nullptr) const;

    /** Attempt a checkpoint at the current boundary; false when the
     *  simulation is not quiescent here. */
    bool tryCheckpoint(std::string *why = nullptr);

    void writeImage(std::ostream &out);
    void loadImage(CkptReader &r);
    void restoreFaultRestore(FaultKind kind, DiskId disk, Time when,
                             std::uint64_t seq);
    /// @}

    explicit Impl(const SystemConfig &c)
        : cfg(c), profile(c.resolvedProfile()), trace(traceContext()),
          log(logContext()), rng(c.seed),
          phys(c.memoryBytes), vm(phys),
          fs(c.diskParams.sectorBytes, 4096, rng.next())
    {
        if (cfg.diskCount < 1)
            PISO_FATAL("the machine needs at least one disk");

        const DiskPolicy policy = profile.disk;
        DiskModel model(cfg.diskParams);
        for (int d = 0; d < cfg.diskCount; ++d) {
            std::unique_ptr<DiskScheduler> dsched;
            switch (policy) {
              case DiskPolicy::HeadPosition:
                dsched = std::make_unique<CScanScheduler>();
                break;
              case DiskPolicy::BlindFair: {
                auto s = std::make_unique<IsoDiskScheduler>(
                    cfg.bwHalfLife);
                fairSchedulers.push_back(s.get());
                dsched = std::move(s);
                break;
              }
              case DiskPolicy::FairPosition: {
                auto s = std::make_unique<PisoDiskScheduler>(
                    cfg.bwThresholdSectors, cfg.bwHalfLife);
                fairSchedulers.push_back(s.get());
                dsched = std::move(s);
                break;
              }
              case DiskPolicy::SchemeDefault:
                PISO_PANIC("unresolved disk policy");
            }
            disks.push_back(std::make_unique<DiskDevice>(
                events, model, std::move(dsched), rng.fork(),
                "disk" + std::to_string(d)));
            fs.addDisk(d, model.totalSectors());
        }

        switch (profile.cpu) {
          case CpuPolicy::Smp:
            sched = std::make_unique<SmpScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            break;
          case CpuPolicy::Quota:
            sched = std::make_unique<QuotaScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            break;
          case CpuPolicy::PIso: {
            auto s = std::make_unique<PisoScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            s->setIpiRevocation(cfg.ipiRevocation);
            s->setLoanHoldoff(cfg.loanHoldoff);
            sched = std::move(s);
            break;
          }
        }
        sched->setEagerPolicyLoops(cfg.eagerPolicyLoops);

        KernelConfig kc = cfg.kernel;
        kc.globalReplacement = profile.memory == MemoryPolicy::Smp;

        std::vector<DiskDevice *> diskPtrs;
        for (auto &d : disks)
            diskPtrs.push_back(d.get());
        kernel = std::make_unique<Kernel>(events, vm, cache, fs, *sched,
                                          std::move(diskPtrs), rng.fork(),
                                          kc);

        if (cfg.networkBitsPerSec > 0.0) {
            std::unique_ptr<NetScheduler> nsched;
            if (profile.net == NetPolicy::Smp) {
                nsched = std::make_unique<FifoNetScheduler>();
            } else {
                auto fair =
                    std::make_unique<FairNetScheduler>(cfg.bwHalfLife);
                fairNet = fair.get();
                nsched = std::move(fair);
            }
            network = std::make_unique<NetworkInterface>(
                events, cfg.networkBitsPerSec, std::move(nsched));
            kernel->setNetwork(network.get());
        }

        if (cfg.numa.enabled()) {
            numa = std::make_unique<NumaModel>(cfg.numa, cfg.cpus);
            kernel->setNuma(numa.get());
        }

        if (profile.memory == MemoryPolicy::PIso) {
            MemPolicyConfig mpc = cfg.memPolicy;
            mpc.eagerRecompute = cfg.eagerPolicyLoops;
            memPolicy = std::make_unique<MemorySharingPolicy>(
                events, vm, spuMgr, mpc);
        }
    }
};

Simulation::Simulation(const SystemConfig &cfg)
    : impl_(std::make_unique<Impl>(cfg))
{
}

Simulation::~Simulation() = default;

SpuId
Simulation::addSpu(const SpuSpec &spec)
{
    if (impl_->ran || impl_->setupDone)
        PISO_FATAL("addSpu after run()");
    if (spec.homeDisk < 0 || spec.homeDisk >= impl_->cfg.diskCount)
        PISO_FATAL("SPU '", spec.name, "' placed on unknown disk ",
                   spec.homeDisk);
    const SpuId id = impl_->spuMgr.create(spec);
    impl_->vm.registerSpu(id);
    impl_->kernel->setSpuDisk(id, spec.homeDisk);
    return id;
}

JobId
Simulation::addJob(SpuId spu, JobSpec spec)
{
    if (impl_->ran || impl_->setupDone)
        PISO_FATAL("addJob after run()");
    if (!impl_->spuMgr.exists(spu) || spu < kFirstUserSpu)
        PISO_FATAL("job '", spec.name, "' added to invalid SPU ", spu);
    impl_->pendingJobs.push_back(Impl::PendingJob{spu, std::move(spec)});
    return static_cast<JobId>(impl_->pendingJobs.size()) - 1;
}

void
Simulation::Impl::applyBandwidthShares(DiskBandwidthTracker &tracker)
{
    // Leaves carry the effective machine shares; groups additionally
    // get their own share and parent links so the tracker can bound
    // usage at every group boundary (no-ops for a flat tree).
    for (SpuId spu : spuMgr.leafSpus())
        tracker.setShare(spu, spuMgr.shareOf(spu));
    for (SpuId spu : spuMgr.userSpus()) {
        if (spuMgr.isGroup(spu))
            tracker.setShare(spu, spuMgr.shareOf(spu));
        if (spuMgr.parentOf(spu) != kNoSpu)
            tracker.setParent(spu, spuMgr.parentOf(spu));
    }
}

SpuTable<SpuId>
Simulation::Impl::spuParents() const
{
    SpuTable<SpuId> parents;
    for (SpuId spu : spuMgr.userSpus()) {
        if (spuMgr.parentOf(spu) != kNoSpu)
            parents[spu] = spuMgr.parentOf(spu);
    }
    return parents;
}

void
Simulation::Impl::rebalance()
{
    if (profile.cpu != CpuPolicy::Smp) {
        sched->setSpuParents(spuParents());
        sched->repartitionCpus(spuMgr.cpuShares());
    }
    for (FairDiskScheduler *fds : fairSchedulers)
        applyBandwidthShares(fds->tracker());
    if (fairNet)
        applyBandwidthShares(fairNet->tracker());
    // A topology change may have re-activated leaf SPUs after the
    // sharing policy's tick loop stopped on an empty registry.
    if (memPolicy)
        memPolicy->arm();
}

void
Simulation::rebalanceSpus()
{
    impl_->rebalance();
}

void
Simulation::Impl::applyMemoryLevels()
{
    // (Re)derive per-SPU memory levels from the *current* frame pool —
    // called at setup and again whenever a fault shrinks or grows it,
    // so remaining capacity is still split by share.
    const std::uint64_t total = vm.totalPages();
    const auto users = spuMgr.leafSpus();
    vm.setAllowed(kKernelSpu, total);
    vm.setAllowed(kSharedSpu, total);

    const auto reserve = static_cast<std::uint64_t>(
        cfg.memPolicy.reserveFraction * static_cast<double>(total));

    switch (profile.memory) {
      case MemoryPolicy::Smp:
        // No per-SPU limits; the pageout daemon keeps the reserve via
        // global replacement.
        vm.setReservePages(reserve);
        for (SpuId spu : users) {
            vm.setEntitled(spu, total);
            vm.setAllowed(spu, total);
        }
        break;
      case MemoryPolicy::Quota: {
        // Fixed quotas: equal/weighted shares of non-kernel memory,
        // split down the SPU tree with per-level floors.
        vm.setReservePages(0);
        const std::uint64_t divisible =
            total > kernelPinnedPages ? total - kernelPinnedPages : 0;
        const SpuTable<std::uint64_t> entitled =
            spuMgr.entitleLeaves(divisible);
        for (SpuId spu : users) {
            const std::uint64_t *share = entitled.find(spu);
            vm.setEntitled(spu, share ? *share : 0);
            vm.setAllowed(spu, share ? *share : 0);
        }
        break;
      }
      case MemoryPolicy::PIso:
        // Levels are owned by the sharing policy; refresh its reserve
        // and recompute promptly so the new pool size takes effect
        // before the policy's next period.
        if (memPolicy) {
            vm.setReservePages(reserve);
            memPolicy->recompute();
        }
        break;
    }
}

void
Simulation::Impl::applyFault(const FaultEvent &ev)
{
    PISO_TRACE(TraceCat::Kernel, events.now(), "fault: ",
               faultKindName(ev.kind));
    switch (ev.kind) {
      case FaultKind::DiskSlow: {
        DiskDevice *d = disks.at(static_cast<std::size_t>(ev.disk)).get();
        d->setSlowFactor(ev.factor);
        if (ev.duration > 0) {
            const EventId id = events.scheduleAfter(
                ev.duration, [d] { d->setSlowFactor(1.0); },
                "faultRestore");
            faultRestores[id] = {FaultKind::DiskSlow, ev.disk};
        }
        break;
      }
      case FaultKind::DiskError: {
        DiskDevice *d = disks.at(static_cast<std::size_t>(ev.disk)).get();
        d->setErrorRate(ev.rate);
        if (ev.duration > 0) {
            const EventId id = events.scheduleAfter(
                ev.duration, [d] { d->setErrorRate(0.0); },
                "faultRestore");
            faultRestores[id] = {FaultKind::DiskError, ev.disk};
        }
        break;
      }
      case FaultKind::DiskDead:
        disks.at(static_cast<std::size_t>(ev.disk))->kill();
        break;
      case FaultKind::CpuOffline:
        sched->takeCpusOffline(ev.cpus);
        rebalance();
        break;
      case FaultKind::CpuOnline:
        sched->bringCpusOnline(ev.cpus);
        rebalance();
        break;
      case FaultKind::MemShrink:
        phys.shrink(ev.pages);
        applyMemoryLevels();
        break;
      case FaultKind::MemGrow:
        phys.grow(ev.pages);
        applyMemoryLevels();
        break;
    }
}

Kernel &
Simulation::kernel()
{
    return *impl_->kernel;
}

EventQueue &
Simulation::events()
{
    return impl_->events;
}

SpuManager &
Simulation::spus()
{
    return impl_->spuMgr;
}

FileSystem &
Simulation::fs()
{
    return impl_->fs;
}

VirtualMemory &
Simulation::vm()
{
    return impl_->vm;
}

CpuScheduler &
Simulation::scheduler()
{
    return *impl_->sched;
}

NetworkInterface *
Simulation::network()
{
    return impl_->network.get();
}

const SystemConfig &
Simulation::config() const
{
    return impl_->cfg;
}

void
Simulation::Impl::setupRun()
{
    if (setupDone)
        PISO_FATAL("Simulation setup replayed twice");
    setupDone = true;

    if (spuMgr.leafSpus().empty())
        PISO_FATAL("no SPUs configured");

    // --- Memory levels ---------------------------------------------
    const std::uint64_t total = vm.totalPages();
    vm.setEntitled(kKernelSpu, 0);
    vm.setAllowed(kKernelSpu, total);
    vm.setEntitled(kSharedSpu, 0);
    vm.setAllowed(kSharedSpu, total);

    // Pin boot-time kernel memory.
    kernelPinnedPages = cfg.kernelResidentBytes / phys.pageBytes();
    for (std::uint64_t i = 0; i < kernelPinnedPages; ++i) {
        if (!vm.tryCharge(kKernelSpu))
            PISO_FATAL("machine too small for the pinned kernel memory");
    }

    // The PIso sharing policy is not started yet: applyMemoryLevels
    // leaves its levels to MemorySharingPolicy::start() below.
    if (profile.memory != MemoryPolicy::PIso)
        applyMemoryLevels();

    // --- CPU partition ---------------------------------------------
    if (profile.cpu != CpuPolicy::Smp) {
        sched->setSpuParents(spuParents());
        sched->partitionCpus(spuMgr.cpuShares());
    }

    // --- Disk and network bandwidth shares ---------------------------
    for (FairDiskScheduler *fds : fairSchedulers)
        applyBandwidthShares(fds->tracker());
    if (fairNet)
        applyBandwidthShares(fairNet->tracker());

    // --- Jobs --------------------------------------------------------
    jobs.reserve(pendingJobs.size());
    for (std::size_t i = 0; i < pendingJobs.size(); ++i) {
        auto &pj = pendingJobs[i];
        const Spu &spu = spuMgr.spu(pj.spu);
        if (spuMgr.isGroup(pj.spu))
            PISO_FATAL("job '", pj.spec.name, "' placed on SPU '",
                       spu.name, "', which is a group; jobs run on ",
                       "leaf SPUs only");
        jobs.emplace_back(static_cast<JobId>(i), pj.spec.name, pj.spu,
                          pj.spec.startAt);
        if (!pj.spec.build)
            PISO_FATAL("job '", pj.spec.name, "' has no build function");

        WorkloadEnv env{fs, rng.fork(), spu.homeDisk, phys.pageBytes()};
        auto procs = pj.spec.build(*kernel, env);
        if (procs.empty())
            PISO_FATAL("job '", pj.spec.name, "' built no processes");
        for (auto &ps : procs) {
            jobs.back().addProcess();
            Process *p = kernel->createProcess(
                pj.spu, static_cast<JobId>(i), std::move(ps.name),
                std::move(ps.behavior), pj.spec.startAt);
            if (ps.touchInterval > 0)
                p->touchInterval = ps.touchInterval;
            if (ps.dirtyFraction >= 0.0)
                p->dirtyFraction = ps.dirtyFraction;
        }
    }

    kernel->onProcessExit = [this](Process &p) {
        if (p.job() != kNoJob) {
            Job &job = jobs[static_cast<std::size_t>(p.job())];
            if (p.ioFailed)
                job.markFailed();
            job.processExited(events.now());
        }
    };

    // --- Fault plan --------------------------------------------------
    if (cfg.faults.maxDiskIndex() >= cfg.diskCount)
        PISO_FATAL("fault plan references disk ",
                   cfg.faults.maxDiskIndex(), " but the machine has ",
                   cfg.diskCount);
    faultSchedule = cfg.faults.schedule();
    faultCursor = 0;

    kernel->start();
    if (memPolicy)
        memPolicy->start();
}

SimResults
Simulation::run()
{
    Impl &im = *impl_;
    if (im.ran)
        PISO_FATAL("Simulation::run() called twice");
    im.ran = true;

    // Run under this simulation's own trace/log contexts: every event
    // callback below executes inside these scopes, whatever thread
    // run() was called from.
    TraceContextScope traceScope(im.trace);
    LogContextScope logScope(im.log);

    // restore() already replayed the setup when continuing from an
    // image; a cold run does it here.
    if (!im.setupDone)
        im.setupRun();

    // --- Go ----------------------------------------------------------
    // Host-side timing of the whole run loop (start through drain); the
    // event counter on the queue gives events/sec for piso_bench and
    // the out-of-band perf report.
    // piso-lint: allow(determinism-wallclock) -- host-side RunPerf timing; reported out-of-band, never feeds simulated state
    const auto wallStart = std::chrono::steady_clock::now();
    const std::uint64_t eventsBefore = im.events.executedEvents();

    // Injected transient pressure: fail the whole attempt up front
    // until the orchestration layer has retried often enough.
    if (im.cfg.chaos.resourceUntilAttempt > 0 &&
        im.cfg.chaos.attempt <= im.cfg.chaos.resourceUntilAttempt) {
        throw ResourceError(detail::concat(
            "injected resource pressure (attempt ", im.cfg.chaos.attempt,
            " <= ", im.cfg.chaos.resourceUntilAttempt, ")"));
    }

    // Watchdog / chaos probes, checked once per executed event. Kept
    // behind one flag so unguarded runs pay nothing in the hot loop.
    const bool guarded = im.cfg.watchdogSimTime > 0 ||
                         im.cfg.watchdogEvents > 0 ||
                         im.cfg.chaos.invariantAtEvent > 0 ||
                         im.cfg.chaos.allocCapPages > 0;
    const auto checkBudgets = [&im, eventsBefore] {
        const SystemConfig &cfg = im.cfg;
        const std::uint64_t executed =
            im.events.executedEvents() - eventsBefore;
        if (cfg.watchdogSimTime > 0 && im.events.now() > cfg.watchdogSimTime)
            throw RunawayError(
                detail::concat("watchdog: simulated time ",
                               formatTime(im.events.now()),
                               " exceeded the budget of ",
                               formatTime(cfg.watchdogSimTime)),
                im.events.now());
        if (cfg.watchdogEvents > 0 && executed > cfg.watchdogEvents)
            throw RunawayError(
                detail::concat("watchdog: ", executed,
                               " events exceeded the budget of ",
                               cfg.watchdogEvents),
                im.events.now());
        if (cfg.chaos.invariantAtEvent > 0 &&
            executed >= cfg.chaos.invariantAtEvent)
            throw InvariantError(
                detail::concat("injected invariant trip at event ",
                               executed),
                im.events.now());
        const std::uint64_t usedPages =
            im.vm.totalPages() - im.vm.freePages();
        if (cfg.chaos.allocCapPages > 0 &&
            usedPages > cfg.chaos.allocCapPages)
            throw ResourceError(
                detail::concat("allocation cap exceeded: ", usedPages,
                               " pages in use > cap of ",
                               cfg.chaos.allocCapPages),
                im.events.now());
    };

    if (im.cfg.checkpointAt > 0 && !im.cfg.checkpointSink)
        throw ConfigError("checkpointAt set without a checkpointSink");
    bool ckptPending = im.cfg.checkpointAt > 0;
    bool stoppedAtCheckpoint = false;

    const auto nextFaultAt = [&im] {
        return im.faultCursor < im.faultSchedule.size()
                   ? im.faultSchedule[im.faultCursor].at
                   : kTimeNever;
    };

    while (im.kernel->liveProcesses() > 0 &&
           im.events.now() <= im.cfg.maxTime) {
        // Checkpoint trigger: once the requested time is the earliest
        // thing left to happen, advance the clock onto it and try at
        // this (and every later) boundary until the state is quiescent.
        if (ckptPending) {
            const Time at = im.cfg.checkpointAt;
            if (im.events.now() >= at ||
                (im.events.nextEventTime() > at && nextFaultAt() > at)) {
                if (im.events.now() < at)
                    im.events.advanceTo(at);
                std::string why;
                if (im.tryCheckpoint(&why)) {
                    ckptPending = false;
                    if (im.cfg.checkpointStop) {
                        stoppedAtCheckpoint = true;
                        break;
                    }
                } else if (im.cfg.checkpointDeadline > 0 &&
                           im.events.now() >= im.cfg.checkpointDeadline) {
                    throw InvariantError(
                        "no quiescent checkpoint boundary found by "
                        "the deadline (last boundary rejected: " +
                            why + ")",
                        im.events.now());
                }
            }
        }
        // Fault-plan cursor: deliver every fault due before (or at)
        // the next event, at its exact timestamp.
        if (nextFaultAt() <= im.events.nextEventTime()) {
            const FaultEvent &ev = im.faultSchedule[im.faultCursor++];
            im.events.advanceTo(ev.at);
            im.applyFault(ev);
            continue;
        }
        if (!im.events.runOne())
            break;
        if (guarded)
            checkBudgets();
    }

    // A requested checkpoint that never fired must not silently produce
    // nothing: the caller is left waiting for a sink call (or an output
    // file) that will never come.
    if (ckptPending)
        throw InvariantError(
            "simulation ended before the requested checkpoint could be "
            "taken (no quiescent boundary at or after the requested "
            "time)",
            im.events.now());

    // Drain: push every delayed write to disk so the measured disk
    // traffic reflects all the data the workload produced (the jobs
    // have already exited; their response times are unaffected). A
    // template run that stopped at its checkpoint skips the drain —
    // its results are discarded anyway.
    if (!stoppedAtCheckpoint) {
        im.kernel->syncAll();
        while (!im.kernel->ioIdle() &&
               im.events.now() <= im.cfg.maxTime) {
            if (nextFaultAt() <= im.events.nextEventTime()) {
                const FaultEvent &ev =
                    im.faultSchedule[im.faultCursor++];
                im.events.advanceTo(ev.at);
                im.applyFault(ev);
                continue;
            }
            if (!im.events.runOne())
                break;
            if (guarded)
                checkBudgets();
        }
    }

    // --- Collect ------------------------------------------------------
    SimResults res;
    res.profile = im.profile;
    res.simulatedTime = im.events.now();
    res.completed = im.kernel->liveProcesses() == 0;
    res.kernel = im.kernel->stats();
    res.perf.events = im.events.executedEvents() - eventsBefore;
    res.perf.policyItersCpu = im.sched->policyIters();
    res.perf.policyItersMem =
        im.memPolicy ? im.memPolicy->policyIters() : 0;
    for (const FairDiskScheduler *fds : im.fairSchedulers)
        res.perf.policyItersDisk += fds->policyIters();
    res.perf.policyItersNet = im.fairNet ? im.fairNet->policyIters() : 0;
    if (im.numa) {
        res.numa.enabled = true;
        res.numa.domains = im.numa->domains();
        res.numa.localTouches = im.numa->localTouches();
        res.numa.remoteTouches = im.numa->remoteTouches();
        res.numa.busBytes = im.numa->busBytes();
        res.numa.busUtilization = im.numa->busUtilization(im.events.now());
    }
    res.perf.wallSec =
        // piso-lint: allow(determinism-wallclock) -- host-side RunPerf timing; reported out-of-band, never feeds simulated state
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();

    for (const Job &job : im.jobs) {
        JobResult jr;
        jr.id = job.id();
        jr.name = job.name();
        jr.spu = job.spu();
        jr.start = job.startAt();
        jr.end = job.endTime();
        jr.completed = job.completed();
        jr.failed = job.failed();
        res.jobs.push_back(jr);
    }

    for (SpuId spu : im.vm.spus()) {
        SpuResult sr;
        sr.id = spu;
        sr.name = im.spuMgr.exists(spu) ? im.spuMgr.spu(spu).name
                                        : "spu" + std::to_string(spu);
        sr.parent = im.spuMgr.exists(spu) ? im.spuMgr.spu(spu).parent
                                          : kNoSpu;
        sr.cpuTime = im.sched->spuCpuTime(spu);
        sr.memUsedPages = im.vm.levels(spu).used;
        sr.memEntitledPages = im.vm.levels(spu).entitled;
        const SpuFaultStats &sf = im.kernel->spuFaults(spu);
        sr.diskErrors = sf.diskErrors.value();
        sr.ioRetries = sf.ioRetries.value();
        sr.ioTimeouts = sf.ioTimeouts.value();
        sr.failedOps = sf.failedOps.value();
        res.spus[spu] = sr;
    }

    for (const auto &dev : im.disks) {
        DiskResult dr;
        dr.name = dev->name();
        const DiskStats &ds = dev->stats();
        dr.requests = ds.requests.value();
        dr.sectors = ds.sectors.value();
        dr.errors = ds.errors.value();
        dr.avgWaitMs = ds.waitMs.mean();
        dr.avgPositionMs = ds.positionMs.mean();
        dr.avgSeekMs = ds.seekMs.mean();
        dr.busyFraction =
            res.simulatedTime == 0
                ? 0.0
                : toSeconds(ds.busyTime) / toSeconds(res.simulatedTime);
        for (SpuId spu : im.vm.spus()) {
            const SpuDiskStats &ss = dev->spuStats(spu);
            if (ss.requests.value() == 0 && ss.waitMs.count() == 0)
                continue;
            SpuDiskResult sdr;
            sdr.requests = ss.requests.value();
            sdr.sectors = ss.sectors.value();
            sdr.errors = ss.errors.value();
            sdr.avgWaitMs = ss.waitMs.mean();
            sdr.avgServiceMs = ss.serviceMs.mean();
            dr.perSpu[spu] = sdr;
        }
        res.disks.push_back(std::move(dr));
    }

    return res;
}

// --------------------------------------------------------------------
// Checkpoint/restore
// --------------------------------------------------------------------

std::uint64_t
Simulation::Impl::configDigest() const
{
    CkptWriter w;
    w.u64(static_cast<std::uint64_t>(cfg.cpus));
    w.u64(cfg.memoryBytes);
    w.u64(static_cast<std::uint64_t>(cfg.diskCount));
    const DiskParams &dp = cfg.diskParams;
    w.u32(dp.cylinders);
    w.u32(dp.surfaces);
    w.u32(dp.sectorsPerTrack);
    w.u32(dp.sectorBytes);
    w.f64(dp.rpm);
    w.f64(dp.seekShortAMs);
    w.f64(dp.seekShortBMs);
    w.u32(dp.seekShortLimit);
    w.f64(dp.seekLongAMs);
    w.f64(dp.seekLongBMs);
    w.f64(dp.headSwitchMs);
    w.f64(dp.controllerOverheadMs);
    w.f64(dp.seekScale);

    w.u8(static_cast<std::uint8_t>(profile.cpu));
    w.u8(static_cast<std::uint8_t>(profile.memory));
    w.u8(static_cast<std::uint8_t>(profile.disk));
    w.u8(static_cast<std::uint8_t>(profile.net));
    w.f64(cfg.bwThresholdSectors);
    w.time(cfg.bwHalfLife);
    w.f64(cfg.networkBitsPerSec);
    w.boolean(cfg.ipiRevocation);
    w.time(cfg.loanHoldoff);
    w.time(cfg.memPolicy.period);
    w.f64(cfg.memPolicy.reserveFraction);

    // NUMA/bus machine model. eagerPolicyLoops is deliberately NOT
    // digested: it is bit-exact with the default paths, so images may
    // cross between the two (the ext_scale warm-start check relies on
    // this).
    w.u64(static_cast<std::uint64_t>(cfg.numa.domains));
    w.time(cfg.numa.localLatency);
    w.time(cfg.numa.remoteLatency);
    w.f64(cfg.numa.busBytesPerSec);
    w.f64(cfg.numa.busSaturation);
    w.time(cfg.numa.busHalfLife);

    const KernelConfig &kc = cfg.kernel;
    w.time(kc.zeroFillCost);
    w.time(kc.copyCostPerBlock);
    w.time(kc.cacheAffinityCost);
    w.time(kc.bdflushPeriod);
    w.time(kc.pageoutPeriod);
    w.u64(kc.pageoutBatch);
    w.u32(kc.readAheadBlocks);
    w.u32(kc.maxIoSectors);
    w.f64(kc.dirtyHighWater);
    w.u64(kc.writeThrottleSectors);
    w.u64(kc.swapExtentPages);
    w.boolean(kc.globalReplacement);
    w.boolean(kc.lockPriorityInheritance);
    w.time(kc.ioTimeout);
    w.i64(kc.ioRetryLimit);
    w.time(kc.ioRetryBackoff);

    w.time(cfg.tickPeriod);
    w.time(cfg.timeSlice);
    w.u64(cfg.kernelResidentBytes);
    w.u64(cfg.seed);

    const auto users = spuMgr.userSpus();
    w.u64(users.size());
    for (SpuId id : users) {
        const Spu &s = spuMgr.spu(id);
        w.i64(id);
        w.str(s.name);
        w.f64(s.share);
        w.i64(s.homeDisk);
        w.i64(s.parent);
        w.boolean(spuMgr.isGroup(id));
    }
    w.u64(pendingJobs.size());
    for (const PendingJob &pj : pendingJobs) {
        w.i64(pj.spu);
        w.str(pj.spec.name);
        w.time(pj.spec.startAt);
    }
    return ckptFnv1a(w.payload());
}

std::optional<std::vector<EvDesc>>
Simulation::Impl::pendingDescriptors(std::string *reject) const
{
    std::vector<EvDesc> out;
    bool ok = true;
    events.forEachPending([&](EventId id, Time when, std::uint64_t seq,
                              const char *name) {
        if (!ok)
            return;
        const std::string_view n = name;
        EvDesc d;
        d.when = when;
        d.seq = seq;
        if (n == "schedTick") {
            d.kind = EvKind::SchedTick;
        } else if (n == "memPolicy") {
            d.kind = EvKind::MemPolicy;
        } else if (n == "bdflush") {
            d.kind = EvKind::Bdflush;
        } else if (n == "pageout") {
            d.kind = EvKind::Pageout;
        } else if (n == "bdflushKick") {
            d.kind = EvKind::BdflushKick;
        } else if (n == "procStart" || n == "segEnd" ||
                   n == "sleepWake") {
            const Pid pid = kernel->eventOwner(id);
            if (pid == kNoPid) {
                ok = false;
                if (reject)
                    *reject = std::string(n) + " event with no owner";
                return;
            }
            d.kind = n == "procStart" ? EvKind::ProcStart
                     : n == "segEnd"  ? EvKind::SegEnd
                                      : EvKind::SleepWake;
            d.arg = pid;
        } else if (n == "faultRestore") {
            const auto it = faultRestores.find(id);
            if (it == faultRestores.end()) {
                ok = false;
                if (reject)
                    *reject = "unregistered faultRestore event";
                return;
            }
            d.kind = it->second.first == FaultKind::DiskSlow
                         ? EvKind::FaultRestoreSlow
                         : EvKind::FaultRestoreError;
            d.arg = it->second.second;
        } else {
            ok = false;
            if (reject)
                *reject = "pending '" + std::string(n) +
                          "' event is not checkpointable";
            return;
        }
        out.push_back(d);
    });
    if (!ok)
        return std::nullopt;
    std::sort(out.begin(), out.end(),
              [](const EvDesc &a, const EvDesc &b) {
                  return a.seq < b.seq;
              });
    return out;
}

bool
Simulation::Impl::tryCheckpoint(std::string *why)
{
    // A boundary is legal pre-loop (nothing executed yet) or strictly
    // between event times; never with events still due at now().
    if (events.executedEvents() > 0 &&
        events.nextEventTime() <= events.now()) {
        if (why)
            *why = "events still due at the current time";
        return false;
    }
    // Nor with a fault due at the current time: restore re-derives the
    // fault cursor as "first fault strictly after now()", so an image
    // taken here would silently drop that fault from the continuation.
    if (faultCursor < faultSchedule.size() &&
        faultSchedule[faultCursor].at <= events.now()) {
        if (why)
            *why = "a scheduled fault is due at the current time";
        return false;
    }
    try {
        kernel->requireIoQuiescent();
    } catch (const InvariantError &e) {
        if (why)
            *why = e.what();
        return false;
    }
    std::string reject;
    if (!pendingDescriptors(&reject)) {
        if (why)
            *why = reject;
        return false;
    }
    std::ostringstream os;
    writeImage(os);
    cfg.checkpointSink(std::move(os).str());
    return true;
}

void
Simulation::Impl::writeImage(std::ostream &out)
{
    std::string reject;
    const auto descs = pendingDescriptors(&reject);
    if (!descs)
        throw InvariantError("checkpoint rejected: " + reject,
                             events.now());

    CkptWriter w;
    w.time(events.now());
    w.u64(events.nextSeq());
    w.u64(events.executedEvents());
    w.u64(descs->size());
    for (const EvDesc &d : *descs) {
        w.u8(static_cast<std::uint8_t>(d.kind));
        w.time(d.when);
        w.u64(d.seq);
        w.i64(d.arg);
    }

    rng.save(w);
    phys.save(w);
    vm.save(w);
    cache.save(w);
    fs.save(w);
    spuMgr.save(w);

    w.u64(disks.size());
    for (const auto &d : disks)
        d->save(w);
    for (const FairDiskScheduler *fds : fairSchedulers)
        fds->tracker().save(w);
    w.boolean(network != nullptr);
    if (network) {
        network->save(w);
        w.boolean(fairNet != nullptr);
        if (fairNet)
            fairNet->tracker().save(w);
    }
    w.boolean(numa != nullptr);
    if (numa)
        numa->save(w);

    sched->save(w);
    kernel->save(w);

    w.u64(jobs.size());
    for (const Job &j : jobs)
        j.save(w);

    w.emit(out, configDigest());
}

void
Simulation::Impl::restoreFaultRestore(FaultKind kind, DiskId disk,
                                      Time when, std::uint64_t seq)
{
    if (disk < 0 || static_cast<std::size_t>(disk) >= disks.size()) {
        throw ConfigError("checkpoint image rejected: faultRestore "
                          "references unknown disk " +
                          std::to_string(disk));
    }
    DiskDevice *d = disks[static_cast<std::size_t>(disk)].get();
    EventId id = kNoEvent;
    if (kind == FaultKind::DiskSlow) {
        id = events.scheduleRestored(
            when, seq, [d] { d->setSlowFactor(1.0); }, "faultRestore");
    } else {
        id = events.scheduleRestored(
            when, seq, [d] { d->setErrorRate(0.0); }, "faultRestore");
    }
    faultRestores[id] = {kind, disk};
}

void
Simulation::Impl::loadImage(CkptReader &r)
{
    const Time now = r.time();
    const std::uint64_t nextSeq = r.u64();
    const std::uint64_t executed = r.u64();

    const std::uint64_t ndescs = r.u64();
    if (ndescs > r.remaining()) {
        throw ConfigError("checkpoint image rejected: event count "
                          "exceeds the payload");
    }
    std::vector<EvDesc> descs;
    descs.reserve(ndescs);
    for (std::uint64_t i = 0; i < ndescs; ++i) {
        const std::uint8_t kind = r.u8();
        if (kind > kMaxEvKind) {
            throw ConfigError(
                "checkpoint image rejected: unknown event kind " +
                std::to_string(kind));
        }
        EvDesc d;
        d.kind = static_cast<EvKind>(kind);
        d.when = r.time();
        d.seq = r.u64();
        d.arg = r.i64();
        descs.push_back(d);
    }

    rng.load(r);
    phys.load(r);
    vm.load(r);
    cache.load(r);
    fs.load(r);
    spuMgr.load(r);

    if (r.u64() != disks.size()) {
        throw ConfigError(
            "checkpoint image rejected: disk count mismatch");
    }
    for (auto &d : disks)
        d->load(r);
    for (FairDiskScheduler *fds : fairSchedulers)
        fds->tracker().load(r);
    if (r.boolean() != (network != nullptr)) {
        throw ConfigError(
            "checkpoint image rejected: network presence mismatch");
    }
    if (network) {
        network->load(r);
        if (r.boolean() != (fairNet != nullptr)) {
            throw ConfigError("checkpoint image rejected: network "
                              "scheduler mismatch");
        }
        if (fairNet)
            fairNet->tracker().load(r);
    }
    if (r.boolean() != (numa != nullptr)) {
        throw ConfigError(
            "checkpoint image rejected: NUMA model presence mismatch");
    }
    if (numa)
        numa->load(r);

    const auto byPid = [this](Pid pid) -> Process * {
        Process *p = kernel->process(pid);
        if (!p) {
            throw ConfigError("checkpoint references unknown pid " +
                              std::to_string(pid));
        }
        return p;
    };
    sched->load(r, byPid);
    kernel->load(r);

    if (r.u64() != jobs.size())
        throw ConfigError("checkpoint image rejected: job count mismatch");
    for (Job &j : jobs)
        j.load(r);

    r.expectEnd();

    // Re-bind every pending event at its original heap coordinates,
    // replacing the setup replay's events wholesale.
    events.clearPending();
    faultRestores.clear();
    // The tick the replayed start() scheduled was just wiped; the
    // descriptor loop below (or its absence in a drained image) is the
    // only source of truth for a pending memPolicy tick.
    if (memPolicy)
        memPolicy->clearScheduled();
    for (const EvDesc &d : descs) {
        switch (d.kind) {
          case EvKind::SchedTick:
            sched->restoreTick(d.when, d.seq);
            break;
          case EvKind::MemPolicy:
            if (!memPolicy) {
                throw ConfigError(
                    "checkpoint image rejected: memPolicy event "
                    "without a memory sharing policy");
            }
            memPolicy->restoreTick(d.when, d.seq);
            break;
          case EvKind::Bdflush:
            kernel->restoreBdflush(d.when, d.seq);
            break;
          case EvKind::Pageout:
            kernel->restorePageout(d.when, d.seq);
            break;
          case EvKind::BdflushKick:
            kernel->restoreBdflushKick(d.when, d.seq);
            break;
          case EvKind::ProcStart:
            kernel->restoreProcStart(static_cast<Pid>(d.arg), d.when,
                                     d.seq);
            break;
          case EvKind::SegEnd:
            kernel->restoreSegEnd(static_cast<Pid>(d.arg), d.when,
                                  d.seq);
            break;
          case EvKind::SleepWake:
            kernel->restoreSleepWake(static_cast<Pid>(d.arg), d.when,
                                     d.seq);
            break;
          case EvKind::FaultRestoreSlow:
            restoreFaultRestore(FaultKind::DiskSlow,
                                static_cast<DiskId>(d.arg), d.when,
                                d.seq);
            break;
          case EvKind::FaultRestoreError:
            restoreFaultRestore(FaultKind::DiskError,
                                static_cast<DiskId>(d.arg), d.when,
                                d.seq);
            break;
        }
    }
    events.restoreClock(now, nextSeq, executed);

    // Faults at or before the checkpoint already fired in the original
    // run (their effects are part of the device state); resume the
    // cursor after them. The plan itself is outside the config digest,
    // so a restore may continue under a longer plan than the one the
    // image was taken under — the warm-start prefix contract.
    faultCursor = 0;
    while (faultCursor < faultSchedule.size() &&
           faultSchedule[faultCursor].at <= now)
        ++faultCursor;
}

void
Simulation::checkpoint(std::ostream &out)
{
    Impl &im = *impl_;
    TraceContextScope traceScope(im.trace);
    LogContextScope logScope(im.log);
    if (!im.setupDone)
        im.setupRun();
    if (im.events.executedEvents() > 0 &&
        im.events.nextEventTime() <= im.events.now()) {
        throw InvariantError(
            "checkpoint requires a quiescent event boundary (events "
            "still due at the current time)",
            im.events.now());
    }
    im.kernel->requireIoQuiescent();
    im.writeImage(out);
}

std::uint64_t
Simulation::configDigest() const
{
    return impl_->configDigest();
}

void
Simulation::restore(std::istream &in)
{
    Impl &im = *impl_;
    if (im.ran || im.setupDone)
        PISO_FATAL("Simulation::restore() must precede run()");
    TraceContextScope traceScope(im.trace);
    LogContextScope logScope(im.log);
    CkptReader r = CkptReader::fromStream(in);
    r.requireDigest(im.configDigest());
    im.setupRun();
    im.loadImage(r);
}

} // namespace piso
