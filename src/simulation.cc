#include "src/simulation.hh"

#include <algorithm>
#include <chrono>

#include "src/core/disk_fair.hh"
#include "src/core/ledger.hh"
#include "src/core/net_fair.hh"
#include "src/core/sched_piso.hh"
#include "src/core/sched_quota.hh"
#include "src/machine/disk.hh"
#include "src/machine/memory.hh"
#include "src/os/buffer_cache.hh"
#include "src/os/cscan.hh"
#include "src/os/filesystem.hh"
#include "src/os/sched_smp.hh"
#include "src/os/vm.hh"
#include "src/sim/event_queue.hh"
#include "src/sim/log.hh"
#include "src/sim/trace.hh"
#include "src/util/error.hh"
#include "src/workload/job.hh"

namespace piso {

void
SystemConfig::setProfile(const SchemeProfile &p)
{
    cpuPolicy = p.cpu;
    memoryPolicy = p.memory;
    diskPolicy = p.disk;
    netPolicy = p.net;
}

SchemeProfile
SystemConfig::resolvedProfile() const
{
    SchemeProfile p = SchemeProfile::uniform(scheme);
    if (diskPolicy != DiskPolicy::SchemeDefault)
        p.disk = diskPolicy;
    if (cpuPolicy)
        p.cpu = *cpuPolicy;
    if (memoryPolicy)
        p.memory = *memoryPolicy;
    if (netPolicy)
        p.net = *netPolicy;
    return p;
}

struct Simulation::Impl
{
    SystemConfig cfg;
    SchemeProfile profile;

    // Trace/log state is per-simulation (snapshotted from the
    // constructing thread's ambient contexts) and re-installed for the
    // duration of run(), so concurrent Simulations on sweep workers
    // never share mutable trace or log state.
    TraceContext trace;
    LogContext log;

    Rng rng;

    EventQueue events;
    PhysicalMemory phys;
    VirtualMemory vm;
    BufferCache cache;
    FileSystem fs;
    SpuManager spuMgr;

    std::vector<std::unique_ptr<DiskDevice>> disks;
    std::vector<FairDiskScheduler *> fairSchedulers;
    std::unique_ptr<NetworkInterface> network;
    FairNetScheduler *fairNet = nullptr;

    std::unique_ptr<CpuScheduler> sched;
    std::unique_ptr<Kernel> kernel;
    std::unique_ptr<MemorySharingPolicy> memPolicy;

    struct PendingJob
    {
        SpuId spu;
        JobSpec spec;
    };
    std::vector<PendingJob> pendingJobs;
    std::vector<Job> jobs;
    bool ran = false;
    std::uint64_t kernelPinnedPages = 0;

    void rebalance();
    void applyBandwidthShares(DiskBandwidthTracker &tracker);
    SpuTable<SpuId> spuParents() const;
    void applyMemoryLevels();
    void applyFault(const FaultEvent &ev);

    explicit Impl(const SystemConfig &c)
        : cfg(c), profile(c.resolvedProfile()), trace(traceContext()),
          log(logContext()), rng(c.seed),
          phys(c.memoryBytes), vm(phys),
          fs(c.diskParams.sectorBytes, 4096, rng.next())
    {
        if (cfg.diskCount < 1)
            PISO_FATAL("the machine needs at least one disk");

        const DiskPolicy policy = profile.disk;
        DiskModel model(cfg.diskParams);
        for (int d = 0; d < cfg.diskCount; ++d) {
            std::unique_ptr<DiskScheduler> dsched;
            switch (policy) {
              case DiskPolicy::HeadPosition:
                dsched = std::make_unique<CScanScheduler>();
                break;
              case DiskPolicy::BlindFair: {
                auto s = std::make_unique<IsoDiskScheduler>(
                    cfg.bwHalfLife);
                fairSchedulers.push_back(s.get());
                dsched = std::move(s);
                break;
              }
              case DiskPolicy::FairPosition: {
                auto s = std::make_unique<PisoDiskScheduler>(
                    cfg.bwThresholdSectors, cfg.bwHalfLife);
                fairSchedulers.push_back(s.get());
                dsched = std::move(s);
                break;
              }
              case DiskPolicy::SchemeDefault:
                PISO_PANIC("unresolved disk policy");
            }
            disks.push_back(std::make_unique<DiskDevice>(
                events, model, std::move(dsched), rng.fork(),
                "disk" + std::to_string(d)));
            fs.addDisk(d, model.totalSectors());
        }

        switch (profile.cpu) {
          case CpuPolicy::Smp:
            sched = std::make_unique<SmpScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            break;
          case CpuPolicy::Quota:
            sched = std::make_unique<QuotaScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            break;
          case CpuPolicy::PIso: {
            auto s = std::make_unique<PisoScheduler>(
                events, cfg.cpus, cfg.tickPeriod, cfg.timeSlice);
            s->setIpiRevocation(cfg.ipiRevocation);
            s->setLoanHoldoff(cfg.loanHoldoff);
            sched = std::move(s);
            break;
          }
        }

        KernelConfig kc = cfg.kernel;
        kc.globalReplacement = profile.memory == MemoryPolicy::Smp;

        std::vector<DiskDevice *> diskPtrs;
        for (auto &d : disks)
            diskPtrs.push_back(d.get());
        kernel = std::make_unique<Kernel>(events, vm, cache, fs, *sched,
                                          std::move(diskPtrs), rng.fork(),
                                          kc);

        if (cfg.networkBitsPerSec > 0.0) {
            std::unique_ptr<NetScheduler> nsched;
            if (profile.net == NetPolicy::Smp) {
                nsched = std::make_unique<FifoNetScheduler>();
            } else {
                auto fair =
                    std::make_unique<FairNetScheduler>(cfg.bwHalfLife);
                fairNet = fair.get();
                nsched = std::move(fair);
            }
            network = std::make_unique<NetworkInterface>(
                events, cfg.networkBitsPerSec, std::move(nsched));
            kernel->setNetwork(network.get());
        }

        if (profile.memory == MemoryPolicy::PIso) {
            memPolicy = std::make_unique<MemorySharingPolicy>(
                events, vm, spuMgr, cfg.memPolicy);
        }
    }
};

Simulation::Simulation(const SystemConfig &cfg)
    : impl_(std::make_unique<Impl>(cfg))
{
}

Simulation::~Simulation() = default;

SpuId
Simulation::addSpu(const SpuSpec &spec)
{
    if (impl_->ran)
        PISO_FATAL("addSpu after run()");
    if (spec.homeDisk < 0 || spec.homeDisk >= impl_->cfg.diskCount)
        PISO_FATAL("SPU '", spec.name, "' placed on unknown disk ",
                   spec.homeDisk);
    const SpuId id = impl_->spuMgr.create(spec);
    impl_->vm.registerSpu(id);
    impl_->kernel->setSpuDisk(id, spec.homeDisk);
    return id;
}

JobId
Simulation::addJob(SpuId spu, JobSpec spec)
{
    if (impl_->ran)
        PISO_FATAL("addJob after run()");
    if (!impl_->spuMgr.exists(spu) || spu < kFirstUserSpu)
        PISO_FATAL("job '", spec.name, "' added to invalid SPU ", spu);
    impl_->pendingJobs.push_back(Impl::PendingJob{spu, std::move(spec)});
    return static_cast<JobId>(impl_->pendingJobs.size()) - 1;
}

void
Simulation::Impl::applyBandwidthShares(DiskBandwidthTracker &tracker)
{
    // Leaves carry the effective machine shares; groups additionally
    // get their own share and parent links so the tracker can bound
    // usage at every group boundary (no-ops for a flat tree).
    for (SpuId spu : spuMgr.leafSpus())
        tracker.setShare(spu, spuMgr.shareOf(spu));
    for (SpuId spu : spuMgr.userSpus()) {
        if (spuMgr.isGroup(spu))
            tracker.setShare(spu, spuMgr.shareOf(spu));
        if (spuMgr.parentOf(spu) != kNoSpu)
            tracker.setParent(spu, spuMgr.parentOf(spu));
    }
}

SpuTable<SpuId>
Simulation::Impl::spuParents() const
{
    SpuTable<SpuId> parents;
    for (SpuId spu : spuMgr.userSpus()) {
        if (spuMgr.parentOf(spu) != kNoSpu)
            parents[spu] = spuMgr.parentOf(spu);
    }
    return parents;
}

void
Simulation::Impl::rebalance()
{
    if (profile.cpu != CpuPolicy::Smp) {
        sched->setSpuParents(spuParents());
        sched->repartitionCpus(spuMgr.cpuShares());
    }
    for (FairDiskScheduler *fds : fairSchedulers)
        applyBandwidthShares(fds->tracker());
    if (fairNet)
        applyBandwidthShares(fairNet->tracker());
}

void
Simulation::rebalanceSpus()
{
    impl_->rebalance();
}

void
Simulation::Impl::applyMemoryLevels()
{
    // (Re)derive per-SPU memory levels from the *current* frame pool —
    // called at setup and again whenever a fault shrinks or grows it,
    // so remaining capacity is still split by share.
    const std::uint64_t total = vm.totalPages();
    const auto users = spuMgr.leafSpus();
    vm.setAllowed(kKernelSpu, total);
    vm.setAllowed(kSharedSpu, total);

    const auto reserve = static_cast<std::uint64_t>(
        cfg.memPolicy.reserveFraction * static_cast<double>(total));

    switch (profile.memory) {
      case MemoryPolicy::Smp:
        // No per-SPU limits; the pageout daemon keeps the reserve via
        // global replacement.
        vm.setReservePages(reserve);
        for (SpuId spu : users) {
            vm.setEntitled(spu, total);
            vm.setAllowed(spu, total);
        }
        break;
      case MemoryPolicy::Quota: {
        // Fixed quotas: equal/weighted shares of non-kernel memory,
        // split down the SPU tree with per-level floors.
        vm.setReservePages(0);
        const std::uint64_t divisible =
            total > kernelPinnedPages ? total - kernelPinnedPages : 0;
        const SpuTable<std::uint64_t> entitled =
            spuMgr.entitleLeaves(divisible);
        for (SpuId spu : users) {
            const std::uint64_t *share = entitled.find(spu);
            vm.setEntitled(spu, share ? *share : 0);
            vm.setAllowed(spu, share ? *share : 0);
        }
        break;
      }
      case MemoryPolicy::PIso:
        // Levels are owned by the sharing policy; refresh its reserve
        // and recompute promptly so the new pool size takes effect
        // before the policy's next period.
        if (memPolicy) {
            vm.setReservePages(reserve);
            memPolicy->recompute();
        }
        break;
    }
}

void
Simulation::Impl::applyFault(const FaultEvent &ev)
{
    PISO_TRACE(TraceCat::Kernel, events.now(), "fault: ",
               faultKindName(ev.kind));
    switch (ev.kind) {
      case FaultKind::DiskSlow: {
        DiskDevice &d = *disks.at(static_cast<std::size_t>(ev.disk));
        d.setSlowFactor(ev.factor);
        if (ev.duration > 0) {
            events.scheduleAfter(
                ev.duration, [&d] { d.setSlowFactor(1.0); },
                "faultRestore");
        }
        break;
      }
      case FaultKind::DiskError: {
        DiskDevice &d = *disks.at(static_cast<std::size_t>(ev.disk));
        d.setErrorRate(ev.rate);
        if (ev.duration > 0) {
            events.scheduleAfter(
                ev.duration, [&d] { d.setErrorRate(0.0); },
                "faultRestore");
        }
        break;
      }
      case FaultKind::DiskDead:
        disks.at(static_cast<std::size_t>(ev.disk))->kill();
        break;
      case FaultKind::CpuOffline:
        sched->takeCpusOffline(ev.cpus);
        rebalance();
        break;
      case FaultKind::CpuOnline:
        sched->bringCpusOnline(ev.cpus);
        rebalance();
        break;
      case FaultKind::MemShrink:
        phys.shrink(ev.pages);
        applyMemoryLevels();
        break;
      case FaultKind::MemGrow:
        phys.grow(ev.pages);
        applyMemoryLevels();
        break;
    }
}

Kernel &
Simulation::kernel()
{
    return *impl_->kernel;
}

EventQueue &
Simulation::events()
{
    return impl_->events;
}

SpuManager &
Simulation::spus()
{
    return impl_->spuMgr;
}

FileSystem &
Simulation::fs()
{
    return impl_->fs;
}

VirtualMemory &
Simulation::vm()
{
    return impl_->vm;
}

CpuScheduler &
Simulation::scheduler()
{
    return *impl_->sched;
}

NetworkInterface *
Simulation::network()
{
    return impl_->network.get();
}

const SystemConfig &
Simulation::config() const
{
    return impl_->cfg;
}

SimResults
Simulation::run()
{
    Impl &im = *impl_;
    if (im.ran)
        PISO_FATAL("Simulation::run() called twice");
    im.ran = true;

    // Run under this simulation's own trace/log contexts: every event
    // callback below executes inside these scopes, whatever thread
    // run() was called from.
    TraceContextScope traceScope(im.trace);
    LogContextScope logScope(im.log);

    if (im.spuMgr.leafSpus().empty())
        PISO_FATAL("no SPUs configured");

    // --- Memory levels ---------------------------------------------
    const std::uint64_t total = im.vm.totalPages();
    im.vm.setEntitled(kKernelSpu, 0);
    im.vm.setAllowed(kKernelSpu, total);
    im.vm.setEntitled(kSharedSpu, 0);
    im.vm.setAllowed(kSharedSpu, total);

    // Pin boot-time kernel memory.
    im.kernelPinnedPages =
        im.cfg.kernelResidentBytes / im.phys.pageBytes();
    for (std::uint64_t i = 0; i < im.kernelPinnedPages; ++i) {
        if (!im.vm.tryCharge(kKernelSpu))
            PISO_FATAL("machine too small for the pinned kernel memory");
    }

    // The PIso sharing policy is not started yet: applyMemoryLevels
    // leaves its levels to MemorySharingPolicy::start() below.
    if (im.profile.memory != MemoryPolicy::PIso)
        im.applyMemoryLevels();

    // --- CPU partition ---------------------------------------------
    if (im.profile.cpu != CpuPolicy::Smp) {
        im.sched->setSpuParents(im.spuParents());
        im.sched->partitionCpus(im.spuMgr.cpuShares());
    }

    // --- Disk and network bandwidth shares ---------------------------
    for (FairDiskScheduler *fds : im.fairSchedulers)
        im.applyBandwidthShares(fds->tracker());
    if (im.fairNet)
        im.applyBandwidthShares(im.fairNet->tracker());

    // --- Jobs --------------------------------------------------------
    im.jobs.reserve(im.pendingJobs.size());
    for (std::size_t i = 0; i < im.pendingJobs.size(); ++i) {
        auto &pj = im.pendingJobs[i];
        const Spu &spu = im.spuMgr.spu(pj.spu);
        if (im.spuMgr.isGroup(pj.spu))
            PISO_FATAL("job '", pj.spec.name, "' placed on SPU '",
                       spu.name, "', which is a group; jobs run on ",
                       "leaf SPUs only");
        im.jobs.emplace_back(static_cast<JobId>(i), pj.spec.name, pj.spu,
                             pj.spec.startAt);
        if (!pj.spec.build)
            PISO_FATAL("job '", pj.spec.name, "' has no build function");

        WorkloadEnv env{im.fs, im.rng.fork(), spu.homeDisk,
                        im.phys.pageBytes()};
        auto procs = pj.spec.build(*im.kernel, env);
        if (procs.empty())
            PISO_FATAL("job '", pj.spec.name, "' built no processes");
        for (auto &ps : procs) {
            im.jobs.back().addProcess();
            Process *p = im.kernel->createProcess(
                pj.spu, static_cast<JobId>(i), std::move(ps.name),
                std::move(ps.behavior), pj.spec.startAt);
            if (ps.touchInterval > 0)
                p->touchInterval = ps.touchInterval;
            if (ps.dirtyFraction >= 0.0)
                p->dirtyFraction = ps.dirtyFraction;
        }
    }

    im.kernel->onProcessExit = [&im](Process &p) {
        if (p.job() != kNoJob) {
            Job &job = im.jobs[static_cast<std::size_t>(p.job())];
            if (p.ioFailed)
                job.markFailed();
            job.processExited(im.events.now());
        }
    };

    // --- Fault plan --------------------------------------------------
    if (im.cfg.faults.maxDiskIndex() >= im.cfg.diskCount)
        PISO_FATAL("fault plan references disk ",
                   im.cfg.faults.maxDiskIndex(), " but the machine has ",
                   im.cfg.diskCount);
    for (const FaultEvent &ev : im.cfg.faults.schedule()) {
        im.events.schedule(
            ev.at, [&im, ev] { im.applyFault(ev); }, "fault");
    }

    // --- Go ----------------------------------------------------------
    // Host-side timing of the whole run loop (start through drain); the
    // event counter on the queue gives events/sec for piso_bench and
    // the out-of-band perf report.
    // piso-lint: allow(determinism-wallclock) -- host-side RunPerf timing; reported out-of-band, never feeds simulated state
    const auto wallStart = std::chrono::steady_clock::now();
    const std::uint64_t eventsBefore = im.events.executedEvents();

    // Injected transient pressure: fail the whole attempt up front
    // until the orchestration layer has retried often enough.
    if (im.cfg.chaos.resourceUntilAttempt > 0 &&
        im.cfg.chaos.attempt <= im.cfg.chaos.resourceUntilAttempt) {
        throw ResourceError(detail::concat(
            "injected resource pressure (attempt ", im.cfg.chaos.attempt,
            " <= ", im.cfg.chaos.resourceUntilAttempt, ")"));
    }

    // Watchdog / chaos probes, checked once per executed event. Kept
    // behind one flag so unguarded runs pay nothing in the hot loop.
    const bool guarded = im.cfg.watchdogSimTime > 0 ||
                         im.cfg.watchdogEvents > 0 ||
                         im.cfg.chaos.invariantAtEvent > 0 ||
                         im.cfg.chaos.allocCapPages > 0;
    const auto checkBudgets = [&im, eventsBefore] {
        const SystemConfig &cfg = im.cfg;
        const std::uint64_t executed =
            im.events.executedEvents() - eventsBefore;
        if (cfg.watchdogSimTime > 0 && im.events.now() > cfg.watchdogSimTime)
            throw RunawayError(
                detail::concat("watchdog: simulated time ",
                               formatTime(im.events.now()),
                               " exceeded the budget of ",
                               formatTime(cfg.watchdogSimTime)),
                im.events.now());
        if (cfg.watchdogEvents > 0 && executed > cfg.watchdogEvents)
            throw RunawayError(
                detail::concat("watchdog: ", executed,
                               " events exceeded the budget of ",
                               cfg.watchdogEvents),
                im.events.now());
        if (cfg.chaos.invariantAtEvent > 0 &&
            executed >= cfg.chaos.invariantAtEvent)
            throw InvariantError(
                detail::concat("injected invariant trip at event ",
                               executed),
                im.events.now());
        const std::uint64_t usedPages =
            im.vm.totalPages() - im.vm.freePages();
        if (cfg.chaos.allocCapPages > 0 &&
            usedPages > cfg.chaos.allocCapPages)
            throw ResourceError(
                detail::concat("allocation cap exceeded: ", usedPages,
                               " pages in use > cap of ",
                               cfg.chaos.allocCapPages),
                im.events.now());
    };

    im.kernel->start();
    if (im.memPolicy)
        im.memPolicy->start();

    while (im.kernel->liveProcesses() > 0 &&
           im.events.now() <= im.cfg.maxTime) {
        if (!im.events.runOne())
            break;
        if (guarded)
            checkBudgets();
    }

    // Drain: push every delayed write to disk so the measured disk
    // traffic reflects all the data the workload produced (the jobs
    // have already exited; their response times are unaffected).
    im.kernel->syncAll();
    while (!im.kernel->ioIdle() && im.events.now() <= im.cfg.maxTime) {
        if (!im.events.runOne())
            break;
        if (guarded)
            checkBudgets();
    }

    // --- Collect ------------------------------------------------------
    SimResults res;
    res.profile = im.profile;
    res.simulatedTime = im.events.now();
    res.completed = im.kernel->liveProcesses() == 0;
    res.kernel = im.kernel->stats();
    res.perf.events = im.events.executedEvents() - eventsBefore;
    res.perf.wallSec =
        // piso-lint: allow(determinism-wallclock) -- host-side RunPerf timing; reported out-of-band, never feeds simulated state
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();

    for (const Job &job : im.jobs) {
        JobResult jr;
        jr.id = job.id();
        jr.name = job.name();
        jr.spu = job.spu();
        jr.start = job.startAt();
        jr.end = job.endTime();
        jr.completed = job.completed();
        jr.failed = job.failed();
        res.jobs.push_back(jr);
    }

    for (SpuId spu : im.vm.spus()) {
        SpuResult sr;
        sr.id = spu;
        sr.name = im.spuMgr.exists(spu) ? im.spuMgr.spu(spu).name
                                        : "spu" + std::to_string(spu);
        sr.parent = im.spuMgr.exists(spu) ? im.spuMgr.spu(spu).parent
                                          : kNoSpu;
        sr.cpuTime = im.sched->spuCpuTime(spu);
        sr.memUsedPages = im.vm.levels(spu).used;
        sr.memEntitledPages = im.vm.levels(spu).entitled;
        const SpuFaultStats &sf = im.kernel->spuFaults(spu);
        sr.diskErrors = sf.diskErrors.value();
        sr.ioRetries = sf.ioRetries.value();
        sr.ioTimeouts = sf.ioTimeouts.value();
        sr.failedOps = sf.failedOps.value();
        res.spus[spu] = sr;
    }

    for (const auto &dev : im.disks) {
        DiskResult dr;
        dr.name = dev->name();
        const DiskStats &ds = dev->stats();
        dr.requests = ds.requests.value();
        dr.sectors = ds.sectors.value();
        dr.errors = ds.errors.value();
        dr.avgWaitMs = ds.waitMs.mean();
        dr.avgPositionMs = ds.positionMs.mean();
        dr.avgSeekMs = ds.seekMs.mean();
        dr.busyFraction =
            res.simulatedTime == 0
                ? 0.0
                : toSeconds(ds.busyTime) / toSeconds(res.simulatedTime);
        for (SpuId spu : im.vm.spus()) {
            const SpuDiskStats &ss = dev->spuStats(spu);
            if (ss.requests.value() == 0 && ss.waitMs.count() == 0)
                continue;
            SpuDiskResult sdr;
            sdr.requests = ss.requests.value();
            sdr.sectors = ss.sectors.value();
            sdr.errors = ss.errors.value();
            sdr.avgWaitMs = ss.waitMs.mean();
            sdr.avgServiceMs = ss.serviceMs.mean();
            dr.perSpu[spu] = sdr;
        }
        res.disks.push_back(std::move(dr));
    }

    return res;
}

} // namespace piso
